// Package netsim models a network at flow level on virtual time.
//
// Instead of simulating packets, each active transfer is a fluid flow across
// a path of links; the network solves the classic max-min fair allocation
// (progressive filling / water-filling) every time the set of flows or link
// capacities change, and schedules flow completions on the sim engine.
//
// This is the standard abstraction used by cloud-scale simulators: it
// captures precisely the effects FRIEDA's evaluation depends on — the
// master's 100 Mbps uplink being shared by 16 concurrent worker transfers,
// and transfer/computation overlap under the real-time strategy — without
// the cost of packet-level simulation.
//
// Allocation is incremental and component-scoped: a flow start, finish,
// cancel, or capacity change settles and re-solves only the connected
// component of links and flows reachable from the affected links, leaving
// every other component's rates and completion events untouched. One solve
// runs progressive filling over an indexed min-heap of link fair shares in
// O((F+L)·log L) for a component of F flows and L links, and completions
// are rescheduled only for flows whose rate actually changed. The retained
// reference solver in oracle.go cross-checks rate vectors in tests.
//
// Links have a fault lifecycle (FailLink / DegradeLink / RestoreLink): a
// failed link kills the flows crossing it — each reports its delivered
// byte count through Flow.OnInterrupt so the sender can resume from that
// offset — and a seeded LinkFaultInjector (faults.go) drives MTBF/MTTR
// outage schedules, optionally as flapping bursts or partial degradations.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"frieda/internal/obs"
	"frieda/internal/sim"
)

// completionEpsilon is the residual byte count below which a flow counts as
// finished; it absorbs float64 rounding in the fluid model.
const completionEpsilon = 1e-6

// minRescheduleEta is the smallest remaining-transfer time worth
// rescheduling. Below it the flow finishes immediately: late in a long run
// the virtual clock's float64 ulp exceeds tiny ETAs, so rescheduling would
// re-fire at the same instant forever without draining the residual.
const minRescheduleEta = 1e-9

// Link is a unidirectional capacity-constrained resource (a NIC direction or
// a shared fabric).
type Link struct {
	name     string
	capacity float64 // effective bits per second (base, possibly degraded)
	base     float64 // provisioned capacity RestoreLink returns to
	failed   bool
	latency  sim.Duration
	flows    map[*Flow]struct{}

	// Allocator scratch, valid only inside one reallocation. mark is the
	// component-BFS generation; dirty is the batched-mode dirty-set
	// generation; the rest is progressive-filling state.
	mark     uint64
	dirty    uint64
	residual float64 // unallocated capacity this solve
	unfrozen int     // flows on this link not yet frozen at a fair share
	share    float64 // residual/unfrozen; +Inf once all flows are frozen
	hidx     int     // index in the solver's link heap

	// tracedBps is the last utilised rate emitted to the tracer, so counter
	// events fire only when the solver actually changed the link's load.
	tracedBps float64
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's effective capacity in bits per second (the
// provisioned rate, unless the link is currently degraded).
func (l *Link) Capacity() float64 { return l.capacity }

// BaseCapacity returns the provisioned capacity in bits per second — what
// the link delivers when healthy, regardless of any degrade episode in
// effect. Gray-failure mitigation compares observed goodput against this,
// not Capacity: a hedged transfer exists precisely because the effective
// capacity has silently dropped below the provisioned one.
func (l *Link) BaseCapacity() float64 { return l.base }

// Failed reports whether the link is currently down (see Network.FailLink).
func (l *Link) Failed() bool { return l.failed }

// Degraded reports whether the link is currently running below its
// provisioned rate (see Network.DegradeLink) — the regime where transfers
// crawl and, in the durability model, may corrupt bytes in flight.
func (l *Link) Degraded() bool { return l.capacity < l.base }

// Latency returns the link's one-way propagation delay.
func (l *Link) Latency() sim.Duration { return l.latency }

// SetLatency sets the link's propagation delay (federated/wide-area sites).
// It applies to flows started afterwards.
func (l *Link) SetLatency(d sim.Duration) {
	if d < 0 {
		panic("netsim: negative latency")
	}
	l.latency = d
}

// ActiveFlows returns the number of flows currently traversing the link.
func (l *Link) ActiveFlows() int { return len(l.flows) }

// UtilisedBps returns the sum of the link's flow rates under the current
// allocation. The sum is accumulated in flow-id order so the float64 result
// is deterministic across runs.
func (l *Link) UtilisedBps() float64 {
	if len(l.flows) == 0 {
		return 0
	}
	flows := make([]*Flow, 0, len(l.flows))
	for f := range l.flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].id < flows[j].id })
	var sum float64
	for _, f := range flows {
		sum += f.rate
	}
	return sum
}

// updateShare refreshes the link's fair-share heap key.
func (l *Link) updateShare() {
	if l.unfrozen == 0 {
		l.share = math.Inf(1)
	} else {
		l.share = l.residual / float64(l.unfrozen)
	}
}

// Flow is an in-flight transfer across a path of links.
type Flow struct {
	id         uint64
	bytes      float64
	remaining  float64
	path       []*Link
	rate       float64 // bits per second under the current allocation
	lastUpdate sim.Time
	done       sim.EventRef
	net        *Network
	// completeFn is the pre-bound completion callback, created once per flow
	// so the allocator's reschedule-on-rate-change path (applyRates) does not
	// allocate a fresh closure per reschedule.
	completeFn  func()
	onComplete  func(sim.Time)
	onInterrupt func(delivered float64, at sim.Time)
	started     sim.Time
	finished    bool
	cancelled   bool
	interrupted bool
	pending     bool // latency delay not yet elapsed; not joined to links

	// Allocator scratch: component-BFS generation and the solver's staged
	// rate/freeze state for the in-progress solve. pcap is the folded
	// composite capacity of the flow's cold links (SetColdAggregation).
	mark     uint64
	nextRate float64
	pcap     float64
	frozen   bool
}

// Bytes returns the flow's total size in bytes.
func (f *Flow) Bytes() float64 { return f.bytes }

// Remaining returns the unsent byte count, settled to the current virtual
// instant — no prior Network.Settle call is needed.
func (f *Flow) Remaining() float64 {
	if f.net != nil && !f.finished && !f.pending {
		f.settleTo(f.net.eng.Now())
	}
	return f.remaining
}

// Rate returns the flow's current max-min fair rate in bits per second.
func (f *Flow) Rate() float64 { return f.rate }

// Started returns the virtual time the flow began.
func (f *Flow) Started() sim.Time { return f.started }

// Finished reports whether the flow has completed.
func (f *Flow) Finished() bool { return f.finished }

// Interrupted reports whether the flow was killed by a link failure before
// completing.
func (f *Flow) Interrupted() bool { return f.interrupted }

// Delivered returns the bytes that reached the receiver so far (all of them
// once the flow finishes) — the resume offset for an interrupted transfer.
func (f *Flow) Delivered() float64 { return f.bytes - f.Remaining() }

// Bottleneck returns the path link that most tightly capped the flow: the
// one with the smallest hypothetical fair share capacity/(flows+1). The +1
// stands in for this flow itself, which has already detached by the time
// completion and interrupt callbacks run — the usual call sites. A failed
// link has zero capacity and therefore always wins. Ties break to the link
// nearest the sender, so the answer is deterministic. Returns nil only for
// a pathless flow.
func (f *Flow) Bottleneck() *Link {
	var best *Link
	var bestShare float64
	for _, l := range f.path {
		cap := l.capacity
		if l.failed {
			cap = 0
		}
		share := cap / float64(len(l.flows)+1)
		if best == nil || share < bestShare {
			best, bestShare = l, share
		}
	}
	return best
}

// OnInterrupt registers a callback invoked when a link failure kills the
// flow, with the bytes delivered up to the interruption. A flow with no
// interrupt callback dies silently, like a cancelled flow. Set it right
// after StartFlow; the completion callback never runs for an interrupted
// flow.
func (f *Flow) OnInterrupt(fn func(delivered float64, at sim.Time)) { f.onInterrupt = fn }

// settleTo advances the flow's remaining-byte accounting to now.
func (f *Flow) settleTo(now sim.Time) {
	dt := float64(now - f.lastUpdate)
	if dt > 0 && f.rate > 0 {
		f.remaining -= f.rate / 8 * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastUpdate = now
}

// Network is a set of links plus the active flows over them.
type Network struct {
	eng    *Engine
	links  map[string]*Link
	flows  map[*Flow]struct{}
	nextID uint64

	// mark is the component-BFS generation counter; compLinks/compFlows and
	// lheap are reusable scratch for the current reallocation. capScratch
	// holds the folded solver's composite-capacity flow ordering.
	mark       uint64
	compLinks  []*Link
	compFlows  []*Flow
	lheap      linkHeap
	capScratch []*Flow

	// foldCold enables cold-link aggregation: links carrying no flow other
	// than the one under consideration are folded into a per-flow composite
	// capacity, so the solver's heap holds only the hot (shared) cut.
	foldCold bool

	// Batched reallocation state: flow starts, completions and cancels mark
	// their links dirty and one rebalance pass per virtual instant settles,
	// solves and applies rates for the union of dirty components. dirtyGen
	// guards Link.dirty marks; rebalanceFn is pre-bound so the hot path
	// allocates no closure.
	batched     bool
	dirtyGen    uint64
	dirtySeeds  []*Link
	rebalanceOn bool
	rebalanceFn func()

	// tracer, when non-nil, receives a counter event per link whose utilised
	// rate the solver changed, plus link fault lifecycle instants.
	tracer *obs.Tracer

	// BytesMoved accumulates total completed-flow volume, for reports.
	BytesMoved float64
	// FlowsCompleted counts completed flows.
	FlowsCompleted uint64
	// FlowsInterrupted counts flows killed by link failures.
	FlowsInterrupted uint64
}

// Engine aliases the simulation engine type for callers that only import
// netsim.
type Engine = sim.Engine

// New returns an empty network bound to the engine.
func New(eng *Engine) *Network {
	return &Network{
		eng:      eng,
		links:    make(map[string]*Link),
		flows:    make(map[*Flow]struct{}),
		dirtyGen: 1, // Link.dirty zero value must read as "not in the dirty set"
	}
}

// SetColdAggregation toggles cold-link folding in the solver: links carrying
// fewer than two component flows are folded into a per-flow composite
// capacity instead of entering the bottleneck heap, so solve cost follows the
// hot (shared) cut of the topology rather than its size. The committed rates
// are the same max-min allocation either way (see solveFolded); the toggle
// exists so flat configurations keep their historical solver byte-for-byte.
// Flip it at setup time, not mid-solve.
func (n *Network) SetColdAggregation(on bool) { n.foldCold = on }

// SetBatched toggles deferred reallocation: flow starts, completions and
// cancels mark their links dirty and schedule (at most) one rebalance event
// at the current virtual instant, which settles, solves and re-rates the
// union of dirty components in a single pass. The engine fires same-instant
// events FIFO, so the rebalance runs after every already-queued event of the
// tick — a 65k-flow staging storm costs one solve instead of 65k. Fault and
// capacity operations stay eager (their callers observe rates immediately).
// Flip it at setup time: disabling it with a rebalance pending would strand
// joined-but-unrated flows.
func (n *Network) SetBatched(on bool) {
	n.batched = on
	if on && n.rebalanceFn == nil {
		n.rebalanceFn = n.rebalance // bound once; markDirty never allocates
	}
}

// markDirty adds the path's links to the dirty set and ensures a rebalance
// event is queued at the current instant. Dedup is by dirty-generation, so a
// storm of same-tick changes over shared links appends each link once.
func (n *Network) markDirty(path []*Link) {
	g := n.dirtyGen
	for _, l := range path {
		if l.dirty != g {
			l.dirty = g
			n.dirtySeeds = append(n.dirtySeeds, l)
		}
	}
	if !n.rebalanceOn {
		n.rebalanceOn = true
		n.eng.Schedule(0, n.rebalanceFn)
	}
}

// rebalance is the batched-mode solve: one settle/solve/apply over the
// connected components of every link dirtied since the last pass. Callbacks
// run from completions, not from here, so no new dirt appears mid-pass; a
// callback that starts or finishes another flow this tick schedules a fresh
// rebalance, and a busy instant converges in a small constant number of
// passes.
func (n *Network) rebalance() {
	n.rebalanceOn = false
	if len(n.dirtySeeds) == 0 {
		return
	}
	n.component(n.dirtySeeds...)
	n.dirtySeeds = n.dirtySeeds[:0]
	n.dirtyGen++
	n.settleComponent()
	n.solveComponent()
	n.applyRates()
}

// NewLink adds a link with the given capacity in bits per second. Names must
// be unique; duplicate names panic since topologies are built once at
// experiment setup.
func (n *Network) NewLink(name string, bitsPerSec float64) *Link {
	if bitsPerSec <= 0 {
		panic(fmt.Sprintf("netsim: non-positive capacity for link %q", name))
	}
	if _, dup := n.links[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %q", name))
	}
	l := &Link{name: name, capacity: bitsPerSec, base: bitsPerSec, flows: make(map[*Flow]struct{})}
	n.links[name] = l
	return l
}

// Link returns the named link, or nil.
func (n *Network) Link(name string) *Link { return n.links[name] }

// SetTracer attaches an observability tracer (nil detaches): every solver
// rate change emits a per-link utilised-bps counter event, and link fault
// transitions emit instants on the link's track. Recording never alters
// allocation behaviour.
func (n *Network) SetTracer(t *obs.Tracer) { n.tracer = t }

// AggregateRateBps returns the summed rate of every active flow — the
// network's instantaneous goodput. Accumulated in flow-id order for
// deterministic float64 results.
func (n *Network) AggregateRateBps() float64 {
	if len(n.flows) == 0 {
		return 0
	}
	flows := make([]*Flow, 0, len(n.flows))
	for f := range n.flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].id < flows[j].id })
	var sum float64
	for _, f := range flows {
		sum += f.rate
	}
	return sum
}

// SetCapacity changes a link's provisioned capacity at the current virtual
// time and reallocates the link's connected component (models
// provisioned-bandwidth changes or congestion from co-tenants). The new
// value becomes the base that RestoreLink returns to.
func (n *Network) SetCapacity(l *Link, bitsPerSec float64) {
	if bitsPerSec <= 0 {
		panic("netsim: non-positive capacity")
	}
	n.component(l)
	n.settleComponent()
	l.capacity = bitsPerSec
	l.base = bitsPerSec
	n.solveComponent()
	n.applyRates()
}

// FailLink takes a link down at the current virtual time. Every flow
// traversing it is killed: the flow's byte accounting settles to now, its
// interrupt callback (if any) receives the delivered byte count, and its
// completion callback never runs. Flows sharing other links of the
// component re-rate over the freed capacity. New flows whose path crosses
// a failed link are interrupted at join time with zero bytes delivered.
// FailLink of a failed link is a no-op.
func (n *Network) FailLink(l *Link) {
	if l.failed {
		return
	}
	n.component(l)
	n.settleComponent()
	l.failed = true
	if n.tracer.Enabled() {
		n.tracer.Instant(l.name, "linkfault", "fail", obs.Args{"flows_killed": len(l.flows)})
	}
	victims := make([]*Flow, 0, len(l.flows))
	for f := range l.flows {
		victims = append(victims, f)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, f := range victims {
		n.removeFlow(f)
		f.interrupted = true
		f.rate = 0
		n.FlowsInterrupted++
	}
	n.solveComponent()
	n.applyRates()
	now := n.eng.Now()
	for _, f := range victims {
		if f.onInterrupt != nil {
			f.onInterrupt(f.bytes-f.remaining, now)
		}
	}
}

// RestoreLink brings a failed or degraded link back to its provisioned
// capacity and reallocates its component. Interrupted flows do not come
// back — recovery (retry/resume) is the sender's job.
func (n *Network) RestoreLink(l *Link) {
	if !l.failed && l.capacity == l.base {
		return
	}
	n.component(l)
	n.settleComponent()
	l.failed = false
	l.capacity = l.base
	n.tracer.Instant(l.name, "linkfault", "restore", nil)
	n.solveComponent()
	n.applyRates()
}

// DegradeLink re-rates a link to the given fraction of its provisioned
// capacity (partial fault: packet loss, a flapping carrier, co-tenant
// congestion) and re-rates the flows crossing it. factor must be in (0, 1].
// RestoreLink undoes the degradation.
func (n *Network) DegradeLink(l *Link, factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netsim: degrade factor %v outside (0,1]", factor))
	}
	n.component(l)
	n.settleComponent()
	l.capacity = l.base * factor
	if n.tracer.Enabled() {
		n.tracer.Instant(l.name, "linkfault", "degrade", obs.Args{"factor": factor})
	}
	n.solveComponent()
	n.applyRates()
}

// StartFlow begins a transfer of the given byte count across path. The
// onComplete callback runs at the virtual time the last byte arrives. Path
// propagation latency (the sum over links) delays the transfer's start —
// the connection-setup RTT of the paper's scp-per-file protocol. A zero or
// negative size completes after the latency alone. An empty path panics —
// model node-local copies with the storage layer instead.
func (n *Network) StartFlow(bytes float64, path []*Link, onComplete func(sim.Time)) *Flow {
	if len(path) == 0 {
		panic("netsim: empty flow path")
	}
	n.nextID++
	f := &Flow{
		id:         n.nextID,
		bytes:      bytes,
		remaining:  bytes,
		path:       path,
		net:        n,
		onComplete: onComplete,
		started:    n.eng.Now(),
	}
	var latency sim.Duration
	for _, l := range path {
		latency += l.latency
	}
	if bytes <= completionEpsilon {
		f.finished = true
		n.FlowsCompleted++
		n.eng.Schedule(latency, func() {
			if onComplete != nil {
				onComplete(n.eng.Now())
			}
		})
		return f
	}
	f.completeFn = func() { n.complete(f) }
	join := func() {
		if f.cancelled {
			return
		}
		for _, l := range path {
			if l.failed {
				// The connection attempt hits a dead link: the flow is born
				// interrupted with nothing delivered. Delivery of the
				// callback is deferred one event so a caller that registers
				// OnInterrupt right after a zero-latency StartFlow still
				// hears about it.
				f.interrupted = true
				n.FlowsInterrupted++
				n.eng.Schedule(0, func() {
					if f.onInterrupt != nil {
						f.onInterrupt(0, n.eng.Now())
					}
				})
				return
			}
		}
		f.lastUpdate = n.eng.Now()
		n.flows[f] = struct{}{}
		for _, l := range path {
			l.flows[f] = struct{}{}
		}
		if n.batched {
			// Rate assignment is deferred to this instant's rebalance pass;
			// until then the flow sits at rate 0 with zero elapsed time.
			n.markDirty(path)
			return
		}
		n.component(path...)
		n.settleComponent()
		n.solveComponent()
		n.applyRates()
	}
	if latency > 0 {
		f.pending = true
		n.eng.Schedule(latency, func() {
			f.pending = false
			join()
		})
	} else {
		f.lastUpdate = n.eng.Now()
		join()
	}
	return f
}

// Cancel aborts an in-flight flow (e.g. the receiving worker failed). The
// completion callback never runs. Cancel of a finished or interrupted flow
// is a no-op.
func (n *Network) Cancel(f *Flow) {
	if f.finished || f.cancelled || f.interrupted {
		return
	}
	f.cancelled = true
	if f.pending {
		return // still in its latency delay; it will never join the links
	}
	if n.batched {
		f.settleTo(n.eng.Now()) // Delivered() stays exact for the caller
		n.detachFlow(f)
		n.markDirty(f.path)
		return
	}
	n.component(f.path...)
	n.settleComponent()
	n.removeFlow(f)
	n.solveComponent()
	n.applyRates()
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Settle brings every flow's Remaining up to the current instant without
// changing allocations. Useful before inspecting progress; Flow.Remaining
// settles itself, so this is only needed for bulk inspection.
func (n *Network) Settle() {
	now := n.eng.Now()
	for f := range n.flows {
		f.settleTo(now)
	}
}

// component collects the connected component of links and flows reachable
// from the seed links (BFS alternating links → their flows → those flows'
// links) into compLinks/compFlows. Everything outside the component is
// untouched by the ensuing settle and solve.
func (n *Network) component(seeds ...*Link) {
	n.mark++
	m := n.mark
	links := n.compLinks[:0]
	flows := n.compFlows[:0]
	for _, l := range seeds {
		if l.mark != m {
			l.mark = m
			links = append(links, l)
		}
	}
	for i := 0; i < len(links); i++ {
		for f := range links[i].flows {
			if f.mark == m {
				continue
			}
			f.mark = m
			flows = append(flows, f)
			for _, l := range f.path {
				if l.mark != m {
					l.mark = m
					links = append(links, l)
				}
			}
		}
	}
	n.compLinks, n.compFlows = links, flows
}

// settleComponent advances every component flow's byte accounting to now.
func (n *Network) settleComponent() {
	now := n.eng.Now()
	for _, f := range n.compFlows {
		f.settleTo(now)
	}
}

// detachFlow detaches a flow from its links and the active set and cancels
// its completion event. It is the batched-mode removal: O(path), no touch of
// the component scratch.
func (n *Network) detachFlow(f *Flow) {
	delete(n.flows, f)
	for _, l := range f.path {
		delete(l.flows, f)
	}
	f.done.Cancel()
	f.done = sim.EventRef{}
}

// removeFlow detaches a flow and additionally drops it from the current
// component scratch, for the eager paths that solve inside the same bracket.
func (n *Network) removeFlow(f *Flow) {
	n.detachFlow(f)
	flows := n.compFlows
	for i, cf := range flows {
		if cf == f {
			flows[i] = flows[len(flows)-1]
			n.compFlows = flows[:len(flows)-1]
			break
		}
	}
}

// linkHeap is an indexed min-heap of links keyed by (fair share, name), so
// the top is always the current bottleneck and ties resolve by name —
// exactly the reference solver's scan order.
type linkHeap []*Link

func (h linkHeap) Len() int { return len(h) }
func (h linkHeap) Less(i, j int) bool {
	if h[i].share != h[j].share {
		return h[i].share < h[j].share
	}
	return h[i].name < h[j].name
}
func (h linkHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hidx = i
	h[j].hidx = j
}
func (h *linkHeap) Push(x any) {
	l := x.(*Link)
	l.hidx = len(*h)
	*h = append(*h, l)
}
func (h *linkHeap) Pop() any {
	old := *h
	n := len(old)
	l := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return l
}

// solveComponent stages the max-min fair rate of every component flow in
// nextRate, dispatching to the folded solver when cold-link aggregation is
// on.
func (n *Network) solveComponent() {
	if n.foldCold {
		n.solveFolded()
		return
	}
	n.solveDense()
}

// solveDense runs progressive filling over the current component,
// staging each flow's new rate in nextRate: repeatedly freeze the bottleneck
// link's flows at its fair share (heap top), charging the share against
// every link on each frozen flow's path. Fair shares only rise as filling
// proceeds, so eager heap fixes keep the top exact. O((F+L)·log L).
func (n *Network) solveDense() {
	flows := n.compFlows
	if len(flows) == 0 {
		return
	}
	h := n.lheap[:0]
	for _, l := range n.compLinks {
		l.residual = l.capacity
		l.unfrozen = len(l.flows)
		l.updateShare()
		l.hidx = len(h)
		h = append(h, l)
	}
	heap.Init(&h)
	for _, f := range flows {
		f.frozen = false
	}
	remaining := len(flows)
	for remaining > 0 {
		top := h[0]
		if top.unfrozen == 0 {
			// Every link is fully frozen yet flows remain — cannot occur
			// with positive capacities; starve the leftovers defensively.
			for _, f := range flows {
				if !f.frozen {
					f.frozen = true
					f.nextRate = 0
					remaining--
				}
			}
			break
		}
		best := top.share
		for f := range top.flows {
			if f.frozen {
				continue
			}
			f.frozen = true
			f.nextRate = best
			remaining--
			for _, l := range f.path {
				l.residual -= best
				if l.residual < 0 {
					l.residual = 0
				}
				l.unfrozen--
				l.updateShare()
				heap.Fix(&h, l.hidx)
			}
		}
	}
	n.lheap = h
}

// solveFolded is the cold-link-aggregation solve. A link carrying fewer than
// two component flows can never arbitrate between flows, so instead of
// entering the bottleneck heap each such cold link is folded into its single
// flow's composite private capacity pcap = min over the flow's cold links.
// Progressive filling then interleaves two sorted bottleneck sources — the
// hot-link heap keyed (share, name) and the composite-capped flows ordered
// (pcap, id) — always freezing at the smaller value, with exact ties going
// to the hot link (matching the dense cascade, where charging a link's own
// share leaves its residual share unchanged). A cold link binds its flow at
// exactly capacity/1, the share the dense solver would pop it at, and frozen
// flows charge identical values against the same hot links in either
// variant, so the committed rates are the same max-min allocation — the
// fold/unfold tests in aggregation_test.go hold this exactly. Heap size (and
// per-freeze charge cost) follows the hot cut of the component, not the
// topology: in a fat-tree staging storm that is the handful of shared
// uplinks, while every leaf NIC folds away.
func (n *Network) solveFolded() {
	flows := n.compFlows
	if len(flows) == 0 {
		return
	}
	h := n.lheap[:0]
	for _, l := range n.compLinks {
		if len(l.flows) < 2 {
			l.hidx = -1 // cold: folded into its flow's pcap below
			continue
		}
		l.residual = l.capacity
		l.unfrozen = len(l.flows)
		l.updateShare()
		l.hidx = len(h)
		h = append(h, l)
	}
	heap.Init(&h)
	byCap := n.capScratch[:0]
	for _, f := range flows {
		f.frozen = false
		pc := math.Inf(1)
		for _, l := range f.path {
			if len(l.flows) < 2 && l.capacity < pc {
				pc = l.capacity
			}
		}
		f.pcap = pc
		if !math.IsInf(pc, 1) {
			byCap = append(byCap, f)
		}
	}
	sort.Slice(byCap, func(i, j int) bool {
		if byCap[i].pcap != byCap[j].pcap {
			return byCap[i].pcap < byCap[j].pcap
		}
		return byCap[i].id < byCap[j].id
	})
	remaining := len(flows)
	freeze := func(f *Flow, rate float64) {
		f.frozen = true
		f.nextRate = rate
		remaining--
		for _, l := range f.path {
			if l.hidx < 0 {
				continue // cold link; nothing shares it, no charge to track
			}
			l.residual -= rate
			if l.residual < 0 {
				l.residual = 0
			}
			l.unfrozen--
			l.updateShare()
			heap.Fix(&h, l.hidx)
		}
	}
	ci := 0
	for remaining > 0 {
		for ci < len(byCap) && byCap[ci].frozen {
			ci++
		}
		linkShare := math.Inf(1)
		if len(h) > 0 {
			linkShare = h[0].share
		}
		if ci < len(byCap) && byCap[ci].pcap < linkShare {
			f := byCap[ci]
			ci++
			freeze(f, f.pcap)
			continue
		}
		if math.IsInf(linkShare, 1) {
			// No hot bottleneck left. Any remaining composite-capped flow
			// freezes at its private capacity; a flow with neither (cannot
			// occur with positive capacities) starves defensively, like the
			// dense solver.
			if ci < len(byCap) {
				f := byCap[ci]
				ci++
				freeze(f, f.pcap)
				continue
			}
			for _, f := range flows {
				if !f.frozen {
					f.frozen = true
					f.nextRate = 0
					remaining--
				}
			}
			break
		}
		top := h[0]
		best := top.share
		for f := range top.flows {
			if f.frozen {
				continue
			}
			freeze(f, best)
		}
	}
	n.capScratch = byCap
	n.lheap = h
}

// applyRates commits the staged rates, rescheduling completions only for
// flows whose rate actually changed: an untouched flow's event time
// t₀ + remaining(t₀)·8/rate is still exact. Changed flows are visited in
// flow-id order so same-time completions stay deterministic across runs.
func (n *Network) applyRates() {
	flows := n.compFlows
	sort.Slice(flows, func(i, j int) bool { return flows[i].id < flows[j].id })
	for _, f := range flows {
		r := f.nextRate
		if r == f.rate && (f.done.Pending() || r <= 0) {
			continue // allocation unchanged; the scheduled completion holds
		}
		f.rate = r
		f.done.Cancel()
		f.done = sim.EventRef{}
		if r <= 0 {
			continue // starved (should not happen with positive capacities)
		}
		eta := sim.Duration(f.remaining * 8 / r)
		f.done = n.eng.Schedule(eta, f.completeFn)
	}
	if n.tracer != nil {
		n.traceLinkRates()
	}
}

// traceLinkRates emits one counter event per component link whose utilised
// rate changed in the solve that just committed. Links are visited in name
// order and rates summed in flow-id order (UtilisedBps), so the emitted
// stream is deterministic.
func (n *Network) traceLinkRates() {
	links := append([]*Link(nil), n.compLinks...)
	sort.Slice(links, func(i, j int) bool { return links[i].name < links[j].name })
	for _, l := range links {
		bps := l.UtilisedBps()
		if bps == l.tracedBps {
			continue
		}
		l.tracedBps = bps
		n.tracer.Counter(l.name, "utilised_bps", bps)
	}
}

// complete finishes a flow at the current virtual time.
func (n *Network) complete(f *Flow) {
	f.done = sim.EventRef{} // the completion event just fired
	if n.batched {
		// The flow's rate has been constant since the last rebalance (any
		// change would have rescheduled this event), so settling just this
		// flow is exact — no component settle needed.
		f.settleTo(n.eng.Now())
		if f.remaining > completionEpsilon && f.rate > 0 &&
			f.remaining*8/f.rate > minRescheduleEta {
			f.done = n.eng.Schedule(sim.Duration(f.remaining*8/f.rate), f.completeFn)
			return
		}
		f.finished = true
		f.remaining = 0
		n.BytesMoved += f.bytes
		n.FlowsCompleted++
		n.detachFlow(f)
		n.markDirty(f.path)
		if f.onComplete != nil {
			f.onComplete(n.eng.Now())
		}
		return
	}
	n.component(f.path...)
	n.settleComponent()
	if f.remaining > completionEpsilon && f.rate > 0 &&
		f.remaining*8/f.rate > minRescheduleEta {
		// A genuine early fire (rates changed underneath the event);
		// reschedule the real completion from the settled residual.
		f.done = n.eng.Schedule(sim.Duration(f.remaining*8/f.rate), f.completeFn)
		return
	}
	f.finished = true
	f.remaining = 0
	n.BytesMoved += f.bytes
	n.FlowsCompleted++
	n.removeFlow(f)
	n.solveComponent()
	n.applyRates()
	if f.onComplete != nil {
		f.onComplete(n.eng.Now())
	}
}
