// Package netsim models a network at flow level on virtual time.
//
// Instead of simulating packets, each active transfer is a fluid flow across
// a path of links; the network solves the classic max-min fair allocation
// (progressive filling / water-filling) every time the set of flows or link
// capacities change, and schedules flow completions on the sim engine.
//
// This is the standard abstraction used by cloud-scale simulators: it
// captures precisely the effects FRIEDA's evaluation depends on — the
// master's 100 Mbps uplink being shared by 16 concurrent worker transfers,
// and transfer/computation overlap under the real-time strategy — without
// the cost of packet-level simulation.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"frieda/internal/sim"
)

// completionEpsilon is the residual byte count below which a flow counts as
// finished; it absorbs float64 rounding in the fluid model.
const completionEpsilon = 1e-6

// minRescheduleEta is the smallest remaining-transfer time worth
// rescheduling. Below it the flow finishes immediately: late in a long run
// the virtual clock's float64 ulp exceeds tiny ETAs, so rescheduling would
// re-fire at the same instant forever without draining the residual.
const minRescheduleEta = 1e-9

// Link is a unidirectional capacity-constrained resource (a NIC direction or
// a shared fabric).
type Link struct {
	name     string
	capacity float64 // bits per second
	latency  sim.Duration
	flows    map[*Flow]struct{}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link capacity in bits per second.
func (l *Link) Capacity() float64 { return l.capacity }

// Latency returns the link's one-way propagation delay.
func (l *Link) Latency() sim.Duration { return l.latency }

// SetLatency sets the link's propagation delay (federated/wide-area sites).
// It applies to flows started afterwards.
func (l *Link) SetLatency(d sim.Duration) {
	if d < 0 {
		panic("netsim: negative latency")
	}
	l.latency = d
}

// ActiveFlows returns the number of flows currently traversing the link.
func (l *Link) ActiveFlows() int { return len(l.flows) }

// Flow is an in-flight transfer across a path of links.
type Flow struct {
	id         uint64
	bytes      float64
	remaining  float64
	path       []*Link
	rate       float64 // bits per second under the current allocation
	lastUpdate sim.Time
	done       *sim.Event
	net        *Network
	onComplete func(sim.Time)
	started    sim.Time
	finished   bool
	cancelled  bool
	pending    bool // latency delay not yet elapsed; not joined to links
}

// Bytes returns the flow's total size in bytes.
func (f *Flow) Bytes() float64 { return f.bytes }

// Remaining returns the unsent byte count as of the last allocation change.
// Call Network.Settle first for an up-to-the-instant value.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's current max-min fair rate in bits per second.
func (f *Flow) Rate() float64 { return f.rate }

// Started returns the virtual time the flow began.
func (f *Flow) Started() sim.Time { return f.started }

// Finished reports whether the flow has completed.
func (f *Flow) Finished() bool { return f.finished }

// Network is a set of links plus the active flows over them.
type Network struct {
	eng    *Engine
	links  map[string]*Link
	flows  map[*Flow]struct{}
	nextID uint64

	// BytesMoved accumulates total completed-flow volume, for reports.
	BytesMoved float64
	// FlowsCompleted counts completed flows.
	FlowsCompleted uint64
}

// Engine aliases the simulation engine type for callers that only import
// netsim.
type Engine = sim.Engine

// New returns an empty network bound to the engine.
func New(eng *Engine) *Network {
	return &Network{
		eng:   eng,
		links: make(map[string]*Link),
		flows: make(map[*Flow]struct{}),
	}
}

// NewLink adds a link with the given capacity in bits per second. Names must
// be unique; duplicate names panic since topologies are built once at
// experiment setup.
func (n *Network) NewLink(name string, bitsPerSec float64) *Link {
	if bitsPerSec <= 0 {
		panic(fmt.Sprintf("netsim: non-positive capacity for link %q", name))
	}
	if _, dup := n.links[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %q", name))
	}
	l := &Link{name: name, capacity: bitsPerSec, flows: make(map[*Flow]struct{})}
	n.links[name] = l
	return l
}

// Link returns the named link, or nil.
func (n *Network) Link(name string) *Link { return n.links[name] }

// SetCapacity changes a link's capacity at the current virtual time and
// reallocates all flows (models provisioned-bandwidth changes or congestion
// from co-tenants).
func (n *Network) SetCapacity(l *Link, bitsPerSec float64) {
	if bitsPerSec <= 0 {
		panic("netsim: non-positive capacity")
	}
	n.settleAll()
	l.capacity = bitsPerSec
	n.reallocate()
}

// StartFlow begins a transfer of the given byte count across path. The
// onComplete callback runs at the virtual time the last byte arrives. Path
// propagation latency (the sum over links) delays the transfer's start —
// the connection-setup RTT of the paper's scp-per-file protocol. A zero or
// negative size completes after the latency alone. An empty path panics —
// model node-local copies with the storage layer instead.
func (n *Network) StartFlow(bytes float64, path []*Link, onComplete func(sim.Time)) *Flow {
	if len(path) == 0 {
		panic("netsim: empty flow path")
	}
	n.nextID++
	f := &Flow{
		id:         n.nextID,
		bytes:      bytes,
		remaining:  bytes,
		path:       path,
		net:        n,
		onComplete: onComplete,
		started:    n.eng.Now(),
	}
	var latency sim.Duration
	for _, l := range path {
		latency += l.latency
	}
	if bytes <= completionEpsilon {
		f.finished = true
		n.FlowsCompleted++
		n.eng.Schedule(latency, func() {
			if onComplete != nil {
				onComplete(n.eng.Now())
			}
		})
		return f
	}
	join := func() {
		if f.cancelled {
			return
		}
		f.lastUpdate = n.eng.Now()
		n.settleAll()
		n.flows[f] = struct{}{}
		for _, l := range path {
			l.flows[f] = struct{}{}
		}
		n.reallocate()
	}
	if latency > 0 {
		f.pending = true
		n.eng.Schedule(latency, func() {
			f.pending = false
			join()
		})
	} else {
		f.lastUpdate = n.eng.Now()
		join()
	}
	return f
}

// Cancel aborts an in-flight flow (e.g. the receiving worker failed). The
// completion callback never runs. Cancel of a finished flow is a no-op.
func (n *Network) Cancel(f *Flow) {
	if f.finished || f.cancelled {
		return
	}
	f.cancelled = true
	if f.pending {
		return // still in its latency delay; it will never join the links
	}
	n.settleAll()
	n.removeFlow(f)
	n.reallocate()
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Settle brings every flow's Remaining up to the current instant without
// changing allocations. Useful before inspecting progress.
func (n *Network) Settle() { n.settleAll() }

// settleAll advances each active flow's remaining-byte accounting to now.
func (n *Network) settleAll() {
	now := n.eng.Now()
	for f := range n.flows {
		dt := float64(now - f.lastUpdate)
		if dt > 0 && f.rate > 0 {
			f.remaining -= f.rate / 8 * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastUpdate = now
	}
}

// removeFlow detaches a flow from its links and the active set and cancels
// its completion event.
func (n *Network) removeFlow(f *Flow) {
	delete(n.flows, f)
	for _, l := range f.path {
		delete(l.flows, f)
	}
	if f.done != nil {
		f.done.Cancel()
		f.done = nil
	}
}

// reallocate recomputes max-min fair rates for all active flows and
// reschedules their completion events. Must be called with all flows
// settled to the current instant.
func (n *Network) reallocate() {
	if len(n.flows) == 0 {
		return
	}
	rates := maxMinFair(n.flows)
	// Schedule completions in flow-id order so same-time completions are
	// deterministic across runs.
	ordered := make([]*Flow, 0, len(rates))
	for f := range rates {
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	for _, f := range ordered {
		r := rates[f]
		f.rate = r
		if f.done != nil {
			f.done.Cancel()
			f.done = nil
		}
		if r <= 0 {
			continue // starved (should not happen with positive capacities)
		}
		eta := sim.Duration(f.remaining * 8 / r)
		ff := f
		f.done = n.eng.Schedule(eta, func() { n.complete(ff) })
	}
}

// complete finishes a flow at the current virtual time.
func (n *Network) complete(f *Flow) {
	n.settleAll()
	if f.remaining > completionEpsilon && f.rate > 0 &&
		f.remaining*8/f.rate > minRescheduleEta {
		// A genuine early fire (rates changed underneath the event);
		// reallocate reschedules the real completion.
		n.reallocate()
		return
	}
	f.finished = true
	f.remaining = 0
	n.BytesMoved += f.bytes
	n.FlowsCompleted++
	n.removeFlow(f)
	n.reallocate()
	if f.onComplete != nil {
		f.onComplete(n.eng.Now())
	}
}

// maxMinFair computes the max-min fair rate for each flow via progressive
// filling: repeatedly find the most-constrained link (smallest residual
// capacity per unfrozen flow), freeze its flows at that fair share, and
// continue until every flow is frozen.
func maxMinFair(flows map[*Flow]struct{}) map[*Flow]float64 {
	rates := make(map[*Flow]float64, len(flows))
	frozen := make(map[*Flow]bool, len(flows))

	// Collect the links in play, deterministically ordered for tie-breaks.
	linkSet := make(map[*Link]struct{})
	for f := range flows {
		for _, l := range f.path {
			linkSet[l] = struct{}{}
		}
	}
	links := make([]*Link, 0, len(linkSet))
	for l := range linkSet {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i].name < links[j].name })

	remaining := len(flows)
	residual := make(map[*Link]float64, len(links))
	for _, l := range links {
		residual[l] = l.capacity
	}

	for remaining > 0 {
		// Find the bottleneck link: min residual / unfrozen-count.
		var bottleneck *Link
		best := math.Inf(1)
		for _, l := range links {
			unfrozen := 0
			for f := range l.flows {
				if !frozen[f] {
					unfrozen++
				}
			}
			if unfrozen == 0 {
				continue
			}
			share := residual[l] / float64(unfrozen)
			if share < best {
				best = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			// Flows whose links all have zero unfrozen count cannot occur;
			// any leftover flows get starved rates.
			for f := range flows {
				if !frozen[f] {
					rates[f] = 0
					remaining--
				}
			}
			break
		}
		// Freeze every unfrozen flow through the bottleneck at the share and
		// charge it against the residual of every link on its path.
		for f := range bottleneck.flows {
			if frozen[f] {
				continue
			}
			frozen[f] = true
			rates[f] = best
			remaining--
			for _, l := range f.path {
				residual[l] -= best
				if residual[l] < 0 {
					residual[l] = 0
				}
			}
		}
	}
	return rates
}
