package netsim

import (
	"fmt"

	"frieda/internal/sim"
)

// Mbps converts megabits/second to the bits/second unit links use.
func Mbps(v float64) float64 { return v * 1e6 }

// Gbps converts gigabits/second to bits/second.
func Gbps(v float64) float64 { return v * 1e9 }

// Host is an endpoint with a full-duplex NIC, modelled as independent uplink
// and downlink capacity (how cloud providers provision VM bandwidth).
type Host struct {
	name string
	up   *Link
	down *Link
	net  *Network
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Up returns the host's transmit link.
func (h *Host) Up() *Link { return h.up }

// Down returns the host's receive link.
func (h *Host) Down() *Link { return h.down }

// NewHost creates a host with the given uplink/downlink capacities in bits
// per second.
func (n *Network) NewHost(name string, upBps, downBps float64) *Host {
	return &Host{
		name: name,
		up:   n.NewLink(name+"/up", upBps),
		down: n.NewLink(name+"/down", downBps),
		net:  n,
	}
}

// Fabric is an optional shared interconnect between hosts, modelling the
// oversubscribed core of a public cloud. When present, host-to-host paths
// include the fabric link.
type Fabric struct {
	link *Link
}

// NewFabric creates a shared fabric of the given capacity.
func (n *Network) NewFabric(name string, bitsPerSec float64) *Fabric {
	return &Fabric{link: n.NewLink(name, bitsPerSec)}
}

// Link exposes the underlying fabric link.
func (f *Fabric) Link() *Link { return f.link }

// Path returns the link path from src to dst, optionally through a fabric.
// Transfers between a host and itself have no network path; callers should
// model those with the storage layer. Path panics on src == dst to surface
// such modelling mistakes early.
func Path(src, dst *Host, fabric *Fabric) []*Link {
	if src == dst {
		panic(fmt.Sprintf("netsim: path from host %q to itself", src.name))
	}
	if fabric != nil {
		return []*Link{src.up, fabric.link, dst.down}
	}
	return []*Link{src.up, dst.down}
}

// Transfer starts a flow of bytes from src to dst (optionally through
// fabric) and invokes onComplete when it finishes.
func (n *Network) Transfer(src, dst *Host, fabric *Fabric, bytes float64, onComplete func(sim.Time)) *Flow {
	return n.StartFlow(bytes, Path(src, dst, fabric), onComplete)
}
