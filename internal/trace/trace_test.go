package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"frieda/internal/fault"
	"frieda/internal/obs"
	"frieda/internal/sim"
	"frieda/internal/simrun"
)

func sampleResult() simrun.Result {
	return simrun.Result{
		MakespanSec:     10,
		TransferWallSec: 4,
		ExecWallSec:     8,
		BytesMoved:      1e6,
		Completions: []simrun.Completion{
			{Task: 0, Worker: "vm-1", Start: 0, End: 3, OK: true, Attempt: 1},
			{Task: 1, Worker: "vm-1", Start: 3, End: 6, OK: true, Attempt: 1},
			{Task: 2, Worker: "vm-2", Start: 1, End: 9, OK: true, Attempt: 1},
			{Task: 3, Worker: "vm-2", Start: 9, End: 10, OK: false, Attempt: 2},
		},
	}
}

func TestLanes(t *testing.T) {
	lanes := Lanes(sampleResult().Completions, 10)
	if len(lanes) != 2 {
		t.Fatalf("lanes = %d", len(lanes))
	}
	if lanes[0].Worker != "vm-1" || lanes[0].Tasks != 2 || lanes[0].BusySec != 6 {
		t.Fatalf("lane 0 = %+v", lanes[0])
	}
	// Failed completion counted separately, not in busy time.
	if lanes[1].Tasks != 1 || lanes[1].Failed != 1 || lanes[1].BusySec != 8 {
		t.Fatalf("lane 1 = %+v", lanes[1])
	}
	// Utilisation is against the run's makespan: vm-1 is busy 6 of 10 s even
	// though its own span (0..6) was fully busy.
	if math.Abs(lanes[0].Utilisation()-0.6) > 1e-9 {
		t.Fatalf("vm-1 util = %v", lanes[0].Utilisation())
	}
	if math.Abs(lanes[1].Utilisation()-0.8) > 1e-9 {
		t.Fatalf("vm-2 util = %v", lanes[1].Utilisation())
	}
}

func TestLanesNoMakespanFallsBack(t *testing.T) {
	lanes := Lanes(sampleResult().Completions, 0)
	// Without a makespan the old lane-span denominator applies.
	if math.Abs(lanes[0].Utilisation()-1.0) > 1e-9 {
		t.Fatalf("vm-1 util = %v", lanes[0].Utilisation())
	}
}

func TestUtilisationEmptyLane(t *testing.T) {
	if (WorkerLane{}).Utilisation() != 0 {
		t.Fatal("empty lane utilisation should be 0")
	}
}

func TestGantt(t *testing.T) {
	out := Gantt(sampleResult(), 20)
	if !strings.Contains(out, "vm-1") || !strings.Contains(out, "vm-2") {
		t.Fatalf("missing workers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// vm-1 busy 0..6 of 10 s: first ~12 of 20 buckets are '#'.
	row := lines[1]
	if !strings.Contains(row, "#") || !strings.Contains(row, ".") {
		t.Fatalf("row lacks both busy and idle: %q", row)
	}
	// vm-2's failed completion ends at t=10: an 'x' in the last bucket and a
	// failure note instead of a silent drop.
	vm2 := lines[2]
	if !strings.HasSuffix(strings.TrimRight(vm2, " "), "1 ok, 1 failed") {
		t.Fatalf("vm-2 note = %q", vm2)
	}
	bar := vm2[strings.IndexByte(vm2, '|')+1 : strings.LastIndexByte(vm2, '|')]
	if bar[len(bar)-1] != 'x' {
		t.Fatalf("vm-2 row missing failure glyph: %q", bar)
	}
	if Gantt(simrun.Result{}, 20) != "(empty run)\n" {
		t.Fatal("empty run not handled")
	}
	// Default width.
	if !strings.Contains(Gantt(sampleResult(), 0), "timeline") {
		t.Fatal("default width broken")
	}
}

func TestGanttFailedOnlyWorker(t *testing.T) {
	res := simrun.Result{
		MakespanSec: 10,
		Completions: []simrun.Completion{
			{Task: 0, Worker: "vm-1", Start: 0, End: 4, OK: true, Attempt: 1},
			{Task: 1, Worker: "", End: 10, OK: false, Attempt: 1},
		},
	}
	out := Gantt(res, 20)
	if !strings.Contains(out, "(unrun)") {
		t.Fatalf("unassigned failures dropped:\n%s", out)
	}
	if !strings.Contains(out, "0 ok, 1 failed") {
		t.Fatalf("failure note missing:\n%s", out)
	}
}

func TestSummaryGolden(t *testing.T) {
	got := Summary(sampleResult())
	want := strings.Join([]string{
		"worker        tasks   failed    busy(s)    span(s)     util",
		"vm-1              2        0        6.0        6.0    60.0%",
		"vm-2              1        1        8.0        8.0    80.0%",
		"makespan 10.0s, transfer wall 4.0s, exec wall 8.0s, 1000000 bytes moved",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("summary golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSummaryDurabilityLine(t *testing.T) {
	res := sampleResult()
	res.FilesLost = 2
	res.CorruptionsDetected = 3
	res.RepairsCompleted = 4
	res.RepairBytes = 5e6
	out := Summary(res)
	want := "durability: 2 files lost, 3 corruptions detected, 4 repairs (5000000 repair bytes)\n"
	if !strings.HasSuffix(out, want) {
		t.Fatalf("durability line missing or wrong:\n%s", out)
	}
	// Runs without durability activity render exactly as before.
	if strings.Contains(Summary(sampleResult()), "durability") {
		t.Fatal("durability line printed for a clean run")
	}
}

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleResult().Completions); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"task,worker,start_sec,end_sec,ok,attempt",
		"0,vm-1,0.000000,3.000000,true,1",
		"1,vm-1,3.000000,6.000000,true,1",
		"2,vm-2,1.000000,9.000000,true,1",
		"3,vm-2,9.000000,10.000000,false,2",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("csv golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSpanSummary(t *testing.T) {
	if got := SpanSummary(nil); got != "(no trace recorded)\n" {
		t.Fatalf("nil tracer = %q", got)
	}
	eng := sim.NewEngine()
	tr := obs.NewTracer(eng, "demo")
	var task, xfer *obs.Span
	eng.Schedule(0, func() {
		xfer = tr.Begin("vm-1/net0", "transfer", "stage common", nil)
		tr.Instant("vm-1", "sched", "dispatch", nil)
	})
	eng.Schedule(4, func() {
		xfer.End(nil)
		task = tr.Begin("vm-1/cpu0", "task", "task 0", nil)
	})
	eng.Schedule(10, func() { task.End(nil) })
	eng.Run()
	out := SpanSummary(tr)
	for _, want := range []string{
		"span summary for demo",
		"vm-1", // aggregated across the worker's cpu and net tracks
		"compute wall 6.0s, transfer wall 4.0s, overlap 0.0s",
		"sched/dispatch 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("span summary missing %q:\n%s", want, out)
		}
	}
}

func TestSpanSummaryRepairColumn(t *testing.T) {
	eng := sim.NewEngine()
	tr := obs.NewTracer(eng, "chaos")
	var task, rep *obs.Span
	eng.Schedule(0, func() {
		task = tr.Begin("vm-1/cpu0", "task", "task 0", nil)
		rep = tr.Begin("vm-2/net0", "repair", "repair f0001", nil)
		tr.Instant("master", "fault", "file-lost", nil)
	})
	eng.Schedule(3, func() { rep.End(nil) })
	eng.Schedule(5, func() { task.End(nil) })
	eng.Run()
	out := SpanSummary(tr)
	for _, want := range []string{
		"repairs", "repair(s)", // column appears when repair spans exist
		"fault/file-lost 1", // lost files surface via the instants line
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("span summary missing %q:\n%s", want, out)
		}
	}
	// The vm-2 row carries the repair aggregate: 1 repair, 3.0 s.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "vm-2") && strings.Contains(line, "1") && strings.Contains(line, "3.0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("vm-2 repair aggregate missing:\n%s", out)
	}
	// A repair-free trace keeps the legacy header.
	eng2 := sim.NewEngine()
	tr2 := obs.NewTracer(eng2, "plain")
	var t2 *obs.Span
	eng2.Schedule(0, func() { t2 = tr2.Begin("vm-1/cpu0", "task", "task 0", nil) })
	eng2.Schedule(1, func() { t2.End(nil) })
	eng2.Run()
	if strings.Contains(SpanSummary(tr2), "repairs") {
		t.Fatal("repair column printed for a repair-free trace")
	}
}

func TestDetectionTimeline(t *testing.T) {
	if got := DetectionTimeline(nil); got != "(no detector transitions)\n" {
		t.Fatalf("empty timeline = %q", got)
	}
	out := DetectionTimeline([]fault.Transition{
		{Node: "vm-2", At: 10, State: fault.Suspect, Missed: 1},
		{Node: "vm-2", At: 12, State: fault.Alive},
		{Node: "vm-1", At: 30, State: fault.Suspect, Missed: 1},
		{Node: "vm-1", At: 50, State: fault.Declared, Missed: 3},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 transitions + 2 per-node footers.
	if len(lines) != 7 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	for _, want := range []string{"t(s)", "suspect", "alive", "declared"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Footers are sorted by node and count each state.
	if !strings.Contains(lines[5], "vm-1") || !strings.Contains(lines[6], "vm-2") {
		t.Fatalf("footers unsorted:\n%s", out)
	}
	if !strings.Contains(lines[5], "suspected 1, recovered 0, declared 1") {
		t.Fatalf("vm-1 footer wrong:\n%s", out)
	}
	if !strings.Contains(lines[6], "suspected 1, recovered 1, declared 0") {
		t.Fatalf("vm-2 footer wrong:\n%s", out)
	}
}

// specResult is a run with a speculative race: the clone on vm-2 won, the
// stranded primary on vm-1 was cancelled.
func specResult() simrun.Result {
	return simrun.Result{
		MakespanSec:          10,
		StragglersSuspected:  1,
		SpeculativeLaunched:  1,
		SpeculativeWon:       1,
		SpeculativeWastedSec: 6,
		Completions: []simrun.Completion{
			{Task: 0, Worker: "vm-1", Start: 0, End: 4, OK: true, Attempt: 1},
			{Task: 1, Worker: "vm-1", Start: 4, End: 10, Attempt: 1, Speculative: true, Cancelled: true},
			{Task: 1, Worker: "vm-2", Start: 6, End: 10, OK: true, Attempt: 1, Speculative: true},
		},
	}
}

func TestGanttSpeculationGlyphs(t *testing.T) {
	out := Gantt(specResult(), 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// vm-1: '#' for the ordinary task, 'c' where its stranded attempt was
	// cancelled — distinct from the 'x' of a genuine failure.
	vm1 := lines[1]
	bar := vm1[strings.IndexByte(vm1, '|')+1 : strings.LastIndexByte(vm1, '|')]
	if !strings.Contains(bar, "#") || bar[len(bar)-1] != 'c' {
		t.Fatalf("vm-1 bar = %q, want '#' body and trailing 'c'", bar)
	}
	if !strings.Contains(vm1, "1 tasks, 1 cancelled") {
		t.Fatalf("vm-1 note = %q", vm1)
	}
	// vm-2: the winning clone renders as 's', not '#'.
	vm2 := lines[2]
	bar2 := vm2[strings.IndexByte(vm2, '|')+1 : strings.LastIndexByte(vm2, '|')]
	if !strings.Contains(bar2, "s") || strings.Contains(bar2, "#") {
		t.Fatalf("vm-2 bar = %q, want 's' spans only", bar2)
	}
}

func TestSummaryGrayLine(t *testing.T) {
	out := Summary(specResult())
	if !strings.Contains(out, "gray: 1 slow-suspected, 1 speculative (1 won, 6.0s wasted), 0 hedged transfers") {
		t.Fatalf("gray line missing:\n%s", out)
	}
	// Runs without gray activity keep the legacy rendering.
	if strings.Contains(Summary(sampleResult()), "gray:") {
		t.Fatal("gray line printed for a gray-free run")
	}
}

func TestSpanSummarySpecColumn(t *testing.T) {
	eng := sim.NewEngine()
	tr := obs.NewTracer(eng, "gray")
	var task, clone *obs.Span
	eng.Schedule(0, func() {
		task = tr.Begin("vm-1/cpu0", "task", "task 0", nil)
		tr.Instant("vm-2", "spec", "spec-launched", nil)
		clone = tr.Begin("vm-2/cpu0", "spec", "task 1 (clone)", nil)
	})
	eng.Schedule(3, func() { clone.End(nil) })
	eng.Schedule(5, func() { task.End(nil) })
	eng.Run()
	out := SpanSummary(tr)
	for _, want := range []string{
		"spec", "spec(s)", // column appears when clone spans exist
		"spec/spec-launched 1", // launches surface via the instants line
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("span summary missing %q:\n%s", want, out)
		}
	}
	// vm-2's row carries the clone aggregate (1 clone, 3.0 s), and clone
	// compute counts toward the compute wall: union of [0,5] and [0,3] = 5.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "vm-2") && strings.Contains(line, "3.0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("vm-2 spec aggregate missing:\n%s", out)
	}
	if !strings.Contains(out, "compute wall 5.0s") {
		t.Fatalf("clone compute missing from wall:\n%s", out)
	}
	// A speculation-free trace keeps the legacy header.
	eng2 := sim.NewEngine()
	tr2 := obs.NewTracer(eng2, "plain")
	var t2 *obs.Span
	eng2.Schedule(0, func() { t2 = tr2.Begin("vm-1/cpu0", "task", "task 0", nil) })
	eng2.Schedule(1, func() { t2.End(nil) })
	eng2.Run()
	if strings.Contains(SpanSummary(tr2), "spec(s)") {
		t.Fatal("spec column printed for a speculation-free trace")
	}
}

// TestSpanSummaryRepairAndSpecColumns: a chaos run with gray mitigation
// records both repair and spec spans; both optional column groups must
// render side by side on the same header, in that order, with each worker
// row carrying its own aggregate.
func TestSpanSummaryRepairAndSpecColumns(t *testing.T) {
	eng := sim.NewEngine()
	tr := obs.NewTracer(eng, "chaos+gray")
	var task, rep, clone *obs.Span
	eng.Schedule(0, func() {
		task = tr.Begin("vm-1/cpu0", "task", "task 0", nil)
		rep = tr.Begin("vm-2/net0", "repair", "repair f0001", nil)
		clone = tr.Begin("vm-3/cpu0", "spec", "task 0 (clone)", nil)
	})
	eng.Schedule(2, func() { rep.End(nil) })
	eng.Schedule(3, func() { clone.End(nil) })
	eng.Schedule(5, func() { task.End(nil) })
	eng.Run()
	out := SpanSummary(tr)
	header := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "worker") {
			header = line
		}
	}
	if header == "" {
		t.Fatalf("no header line:\n%s", out)
	}
	ri, si := strings.Index(header, "repair(s)"), strings.Index(header, "spec(s)")
	if ri < 0 || si < 0 {
		t.Fatalf("header missing a column group: %q", header)
	}
	if ri > si {
		t.Fatalf("repair columns must precede spec columns: %q", header)
	}
	wantRow := map[string]string{"vm-2": "2.0", "vm-3": "3.0"}
	for worker, sec := range wantRow {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, worker) && strings.Contains(line, sec) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s aggregate (%ss) missing:\n%s", worker, sec, out)
		}
	}
	// Clone compute joins the wall: union of [0,5] task and [0,3] clone.
	if !strings.Contains(out, "compute wall 5.0s") {
		t.Fatalf("walls wrong:\n%s", out)
	}
}

// TestSpanSummaryHistogramPercentiles: metrics registries passed to the
// variadic SpanSummary contribute one interpolated-percentile line per
// populated histogram; empty histograms and nil registries stay silent.
func TestSpanSummaryHistogramPercentiles(t *testing.T) {
	eng := sim.NewEngine()
	tr := obs.NewTracer(eng, "demo")
	var task *obs.Span
	eng.Schedule(0, func() { task = tr.Begin("vm-1/cpu0", "task", "task 0", nil) })
	eng.Schedule(4, func() { task.End(nil) })
	eng.Run()

	m := obs.NewMetrics(eng, "demo", 10)
	h := m.Histogram("task_sec", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	m.Histogram("transfer_sec", []float64{1}) // never observed: no line

	out := SpanSummary(tr, m, nil)
	if !strings.Contains(out, "task_sec: n=4 p50 1.500s") {
		t.Fatalf("percentile line missing:\n%s", out)
	}
	if strings.Contains(out, "transfer_sec") {
		t.Fatalf("empty histogram rendered:\n%s", out)
	}
	// Without registries the summary is unchanged from the legacy form.
	if strings.Contains(SpanSummary(tr), "task_sec") {
		t.Fatal("histogram line printed without a registry")
	}
}
