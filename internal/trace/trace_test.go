package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"frieda/internal/fault"
	"frieda/internal/simrun"
)

func sampleResult() simrun.Result {
	return simrun.Result{
		MakespanSec:     10,
		TransferWallSec: 4,
		ExecWallSec:     8,
		BytesMoved:      1e6,
		Completions: []simrun.Completion{
			{Task: 0, Worker: "vm-1", Start: 0, End: 3, OK: true, Attempt: 1},
			{Task: 1, Worker: "vm-1", Start: 3, End: 6, OK: true, Attempt: 1},
			{Task: 2, Worker: "vm-2", Start: 1, End: 9, OK: true, Attempt: 1},
			{Task: 3, Worker: "vm-2", Start: 9, End: 10, OK: false, Attempt: 2},
		},
	}
}

func TestLanes(t *testing.T) {
	lanes := Lanes(sampleResult().Completions)
	if len(lanes) != 2 {
		t.Fatalf("lanes = %d", len(lanes))
	}
	if lanes[0].Worker != "vm-1" || lanes[0].Tasks != 2 || lanes[0].BusySec != 6 {
		t.Fatalf("lane 0 = %+v", lanes[0])
	}
	// Failed completion excluded from lanes.
	if lanes[1].Tasks != 1 || lanes[1].BusySec != 8 {
		t.Fatalf("lane 1 = %+v", lanes[1])
	}
	if math.Abs(lanes[0].Utilisation()-1.0) > 1e-9 {
		t.Fatalf("vm-1 util = %v", lanes[0].Utilisation())
	}
}

func TestUtilisationEmptyLane(t *testing.T) {
	if (WorkerLane{}).Utilisation() != 0 {
		t.Fatal("empty lane utilisation should be 0")
	}
}

func TestGantt(t *testing.T) {
	out := Gantt(sampleResult(), 20)
	if !strings.Contains(out, "vm-1") || !strings.Contains(out, "vm-2") {
		t.Fatalf("missing workers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// vm-1 busy 0..6 of 10 s: first ~12 of 20 buckets are '#'.
	row := lines[1]
	if !strings.Contains(row, "#") || !strings.Contains(row, ".") {
		t.Fatalf("row lacks both busy and idle: %q", row)
	}
	if Gantt(simrun.Result{}, 20) != "(empty run)\n" {
		t.Fatal("empty run not handled")
	}
	// Default width.
	if !strings.Contains(Gantt(sampleResult(), 0), "timeline") {
		t.Fatal("default width broken")
	}
}

func TestSummary(t *testing.T) {
	out := Summary(sampleResult())
	for _, want := range []string{"vm-1", "vm-2", "makespan 10.0s", "util"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleResult().Completions); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "task,worker,start_sec,end_sec,ok,attempt" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[4], "false,2") {
		t.Fatalf("failed row = %q", lines[4])
	}
}

func TestDetectionTimeline(t *testing.T) {
	if got := DetectionTimeline(nil); got != "(no detector transitions)\n" {
		t.Fatalf("empty timeline = %q", got)
	}
	out := DetectionTimeline([]fault.Transition{
		{Node: "vm-2", At: 10, State: fault.Suspect, Missed: 1},
		{Node: "vm-2", At: 12, State: fault.Alive},
		{Node: "vm-1", At: 30, State: fault.Suspect, Missed: 1},
		{Node: "vm-1", At: 50, State: fault.Declared, Missed: 3},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 transitions + 2 per-node footers.
	if len(lines) != 7 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	for _, want := range []string{"t(s)", "suspect", "alive", "declared"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Footers are sorted by node and count each state.
	if !strings.Contains(lines[5], "vm-1") || !strings.Contains(lines[6], "vm-2") {
		t.Fatalf("footers unsorted:\n%s", out)
	}
	if !strings.Contains(lines[5], "suspected 1, recovered 0, declared 1") {
		t.Fatalf("vm-1 footer wrong:\n%s", out)
	}
	if !strings.Contains(lines[6], "suspected 1, recovered 1, declared 0") {
		t.Fatalf("vm-2 footer wrong:\n%s", out)
	}
}
