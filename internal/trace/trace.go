// Package trace renders execution timelines from simulation results: a
// per-worker Gantt chart in text, phase aggregates, and CSV export — the
// observability surface a FRIEDA operator uses to understand where a
// strategy spends its time.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"frieda/internal/fault"
	"frieda/internal/obs"
	"frieda/internal/simrun"
)

// WorkerLane aggregates one worker's task executions.
type WorkerLane struct {
	Worker string
	Tasks  int
	// Failed counts the worker's terminal failed attempts.
	Failed int
	// BusySec is the summed task durations.
	BusySec float64
	// FirstStart and LastEnd bound the lane.
	FirstStart, LastEnd float64
	// MakespanSec is the whole run's duration, the utilisation denominator.
	MakespanSec float64
}

// Lanes computes per-worker aggregates from completions, sorted by worker.
// makespanSec is the run's total duration; it denominates Utilisation so a
// worker idle before its first or after its last task reads as idle.
func Lanes(completions []simrun.Completion, makespanSec float64) []WorkerLane {
	byWorker := map[string]*WorkerLane{}
	for _, c := range completions {
		l := byWorker[c.Worker]
		if l == nil {
			l = &WorkerLane{Worker: c.Worker, FirstStart: float64(c.Start), MakespanSec: makespanSec}
			byWorker[c.Worker] = l
		}
		if !c.OK {
			l.Failed++
			continue
		}
		l.Tasks++
		l.BusySec += float64(c.End - c.Start)
		if float64(c.Start) < l.FirstStart {
			l.FirstStart = float64(c.Start)
		}
		if float64(c.End) > l.LastEnd {
			l.LastEnd = float64(c.End)
		}
	}
	out := make([]WorkerLane, 0, len(byWorker))
	for _, l := range byWorker {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Utilisation returns busy time over the run's makespan — the fraction of
// the whole run this worker spent computing. Lanes built without a makespan
// fall back to the lane's own span (0 for an empty lane).
func (l WorkerLane) Utilisation() float64 {
	span := l.MakespanSec
	if span <= 0 {
		span = l.LastEnd - l.FirstStart
	}
	if span <= 0 {
		return 0
	}
	return l.BusySec / span
}

// Gantt renders a fixed-width text timeline, one row per worker: '#' for
// busy buckets, 's' for buckets busy with a speculative clone, '.' for
// idle, 'x' marking where a failed or interrupted attempt went terminal,
// and 'c' where a speculative race's losing attempt was cancelled — fault
// runs show where work was lost or discarded instead of silently dropping
// those rows. width is the number of buckets (default 60).
func Gantt(res simrun.Result, width int) string {
	if width <= 0 {
		width = 60
	}
	if res.MakespanSec <= 0 || len(res.Completions) == 0 {
		return "(empty run)\n"
	}
	type span struct {
		start, end float64
		spec       bool
	}
	byWorker := map[string][]span{}
	failsBy := map[string][]float64{}
	cancelBy := map[string][]float64{}
	for _, c := range res.Completions {
		if c.Cancelled {
			cancelBy[c.Worker] = append(cancelBy[c.Worker], float64(c.End))
			continue
		}
		if !c.OK {
			failsBy[c.Worker] = append(failsBy[c.Worker], float64(c.End))
			continue
		}
		byWorker[c.Worker] = append(byWorker[c.Worker], span{float64(c.Start), float64(c.End), c.Speculative})
	}
	seen := map[string]bool{}
	var workers []string
	for w := range byWorker {
		seen[w] = true
		workers = append(workers, w)
	}
	for _, extra := range []map[string][]float64{failsBy, cancelBy} {
		for w := range extra {
			if !seen[w] {
				seen[w] = true
				workers = append(workers, w)
			}
		}
	}
	sort.Strings(workers)

	var b strings.Builder
	bucket := res.MakespanSec / float64(width)
	fmt.Fprintf(&b, "timeline: %.1fs total, one column = %.2fs\n", res.MakespanSec, bucket)
	for _, w := range workers {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range byWorker[w] {
			lo := int(s.start / bucket)
			hi := int(s.end / bucket)
			if hi >= width {
				hi = width - 1
			}
			glyph := byte('#')
			if s.spec {
				glyph = 's'
			}
			for i := lo; i <= hi; i++ {
				row[i] = glyph
			}
		}
		for _, at := range failsBy[w] {
			i := int(at / bucket)
			if i >= width {
				i = width - 1
			}
			row[i] = 'x'
		}
		for _, at := range cancelBy[w] {
			i := int(at / bucket)
			if i >= width {
				i = width - 1
			}
			row[i] = 'c'
		}
		label := w
		if label == "" {
			label = "(unrun)"
		}
		note := fmt.Sprintf("%d tasks", len(byWorker[w]))
		if nf := len(failsBy[w]); nf > 0 {
			note = fmt.Sprintf("%d ok, %d failed", len(byWorker[w]), nf)
		}
		if nc := len(cancelBy[w]); nc > 0 {
			note += fmt.Sprintf(", %d cancelled", nc)
		}
		fmt.Fprintf(&b, "%-8s |%s| %s\n", label, row, note)
	}
	return b.String()
}

// Summary renders per-worker utilisation aggregates. Utilisation is busy
// time over the run's makespan, so idle tails count against a worker.
func Summary(res simrun.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %10s %10s %8s\n", "worker", "tasks", "failed", "busy(s)", "span(s)", "util")
	for _, l := range Lanes(res.Completions, res.MakespanSec) {
		worker := l.Worker
		if worker == "" {
			worker = "(unrun)"
		}
		fmt.Fprintf(&b, "%-10s %8d %8d %10.1f %10.1f %7.1f%%\n",
			worker, l.Tasks, l.Failed, l.BusySec, l.LastEnd-l.FirstStart, 100*l.Utilisation())
	}
	fmt.Fprintf(&b, "makespan %.1fs, transfer wall %.1fs, exec wall %.1fs, %.0f bytes moved\n",
		res.MakespanSec, res.TransferWallSec, res.ExecWallSec, res.BytesMoved)
	// The durability line appears only when the run had durability activity,
	// so legacy runs render unchanged.
	if res.FilesLost > 0 || res.CorruptionsDetected > 0 || res.RepairBytes > 0 {
		fmt.Fprintf(&b, "durability: %d files lost, %d corruptions detected, %d repairs (%.0f repair bytes)\n",
			res.FilesLost, res.CorruptionsDetected, res.RepairsCompleted, res.RepairBytes)
	}
	// Likewise the gray-failure line: only runs that suspected or mitigated
	// anything show it.
	if res.StragglersSuspected > 0 || res.SpeculativeLaunched > 0 || res.HedgedTransfers > 0 {
		fmt.Fprintf(&b, "gray: %d slow-suspected, %d speculative (%d won, %.1fs wasted), %d hedged transfers\n",
			res.StragglersSuspected, res.SpeculativeLaunched, res.SpeculativeWon,
			res.SpeculativeWastedSec, res.HedgedTransfers)
	}
	return b.String()
}

// SpanSummary aggregates a run's recorded spans into a phase breakdown: per
// worker, real busy seconds from task spans and staging seconds from
// transfer spans, plus counts of the run's instant events. Any metrics
// registries passed along contribute one bucket-interpolated percentile
// line per populated histogram (task_sec, transfer_sec, ...). Returns a
// note when tracing was disabled.
func SpanSummary(tr *obs.Tracer, ms ...*obs.Metrics) string {
	if !tr.Enabled() || tr.Len() == 0 {
		return "(no trace recorded)\n"
	}
	type agg struct {
		tasks, xfers     int
		taskSec, xferSec float64
		taskIvs, xferIvs [][2]float64
		attempts         int
		repairs          int
		repairSec        float64
		specs            int
		specSec          float64
	}
	byWorker := map[string]*agg{}
	worker := func(track string) string {
		if i := strings.IndexByte(track, '/'); i >= 0 {
			return track[:i]
		}
		return track
	}
	instants := map[string]int{}
	for _, e := range tr.Events() {
		switch e.Phase {
		case obs.PhaseSpan:
			w := worker(e.Track)
			a := byWorker[w]
			if a == nil {
				a = &agg{}
				byWorker[w] = a
			}
			iv := [2]float64{float64(e.Ts), float64(e.End())}
			switch e.Cat {
			case "task":
				a.tasks++
				a.taskSec += float64(e.Dur)
				a.taskIvs = append(a.taskIvs, iv)
			case "transfer":
				a.xfers++
				a.xferSec += float64(e.Dur)
				a.xferIvs = append(a.xferIvs, iv)
			case "attempt":
				a.attempts++
			case "repair":
				a.repairs++
				a.repairSec += float64(e.Dur)
			case "spec":
				// Speculative clone executions: real compute, so their
				// intervals count toward the compute wall too.
				a.specs++
				a.specSec += float64(e.Dur)
				a.taskIvs = append(a.taskIvs, iv)
			}
		case obs.PhaseInstant:
			instants[e.Cat+"/"+e.Name]++
		}
	}
	workers := make([]string, 0, len(byWorker))
	var taskIvs, xferIvs [][2]float64
	for w, a := range byWorker {
		workers = append(workers, w)
		taskIvs = append(taskIvs, a.taskIvs...)
		xferIvs = append(xferIvs, a.xferIvs...)
	}
	sort.Strings(workers)

	// The repair and speculation columns appear only when the run recorded
	// spans of that kind, so legacy traces render unchanged.
	repairs, specs := false, false
	for _, a := range byWorker {
		if a.repairs > 0 {
			repairs = true
		}
		if a.specs > 0 {
			specs = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "span summary for %s (%d events)\n", tr.Name(), tr.Len())
	header := fmt.Sprintf("%-10s %6s %10s %6s %9s %9s", "worker", "tasks", "task(s)", "xfers", "xfer(s)", "attempts")
	if repairs {
		header += fmt.Sprintf(" %8s %9s", "repairs", "repair(s)")
	}
	if specs {
		header += fmt.Sprintf(" %6s %9s", "spec", "spec(s)")
	}
	b.WriteString(header + "\n")
	for _, w := range workers {
		a := byWorker[w]
		line := fmt.Sprintf("%-10s %6d %10.1f %6d %9.1f %9d",
			w, a.tasks, a.taskSec, a.xfers, a.xferSec, a.attempts)
		if repairs {
			line += fmt.Sprintf(" %8d %9.1f", a.repairs, a.repairSec)
		}
		if specs {
			line += fmt.Sprintf(" %6d %9.1f", a.specs, a.specSec)
		}
		b.WriteString(line + "\n")
	}
	taskWall := unionSec(taskIvs)
	xferWall := unionSec(xferIvs)
	overlap := taskWall + xferWall - unionSec(append(taskIvs, xferIvs...))
	fmt.Fprintf(&b, "compute wall %.1fs, transfer wall %.1fs, overlap %.1fs\n", taskWall, xferWall, overlap)
	if len(instants) > 0 {
		keys := make([]string, 0, len(instants))
		for k := range instants {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s %d", k, instants[k])
		}
		fmt.Fprintf(&b, "instants: %s\n", strings.Join(parts, ", "))
	}
	for _, m := range ms {
		for _, h := range m.Histograms() {
			if h.Count() == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s: n=%d p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
				h.HistName(), h.Count(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
	return b.String()
}

// unionSec returns the total length covered by the union of the intervals.
func unionSec(ivs [][2]float64) float64 {
	if len(ivs) == 0 {
		return 0
	}
	sorted := append([][2]float64(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	total := 0.0
	lo, hi := sorted[0][0], sorted[0][1]
	for _, iv := range sorted[1:] {
		if iv[0] > hi {
			total += hi - lo
			lo, hi = iv[0], iv[1]
			continue
		}
		if iv[1] > hi {
			hi = iv[1]
		}
	}
	return total + (hi - lo)
}

// DetectionTimeline renders the failure detector's suspect/declare/recover
// transitions as one line per event in virtual-time order, with a per-node
// tally footer — the operator's view of how partitions were interpreted.
func DetectionTimeline(transitions []fault.Transition) string {
	if len(transitions) == 0 {
		return "(no detector transitions)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s  %-10s %-9s %s\n", "t(s)", "node", "state", "missed")
	counts := map[string]map[fault.NodeState]int{}
	for _, tr := range transitions {
		fmt.Fprintf(&b, "%10.1f  %-10s %-9s %d\n", float64(tr.At), tr.Node, tr.State, tr.Missed)
		if counts[tr.Node] == nil {
			counts[tr.Node] = map[fault.NodeState]int{}
		}
		counts[tr.Node][tr.State]++
	}
	nodes := make([]string, 0, len(counts))
	for n := range counts {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		c := counts[n]
		fmt.Fprintf(&b, "%-10s suspected %d, recovered %d, declared %d\n",
			n, c[fault.Suspect], c[fault.Alive], c[fault.Declared])
	}
	return b.String()
}

// WriteCSV exports completions for external plotting.
func WriteCSV(w io.Writer, completions []simrun.Completion) error {
	if _, err := fmt.Fprintln(w, "task,worker,start_sec,end_sec,ok,attempt"); err != nil {
		return err
	}
	for _, c := range completions {
		if _, err := fmt.Fprintf(w, "%d,%s,%.6f,%.6f,%t,%d\n",
			c.Task, c.Worker, float64(c.Start), float64(c.End), c.OK, c.Attempt); err != nil {
			return err
		}
	}
	return nil
}
