// Package trace renders execution timelines from simulation results: a
// per-worker Gantt chart in text, phase aggregates, and CSV export — the
// observability surface a FRIEDA operator uses to understand where a
// strategy spends its time.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"frieda/internal/fault"
	"frieda/internal/simrun"
)

// WorkerLane aggregates one worker's task executions.
type WorkerLane struct {
	Worker string
	Tasks  int
	// BusySec is the summed task durations.
	BusySec float64
	// FirstStart and LastEnd bound the lane.
	FirstStart, LastEnd float64
}

// Lanes computes per-worker aggregates from completions, sorted by worker.
func Lanes(completions []simrun.Completion) []WorkerLane {
	byWorker := map[string]*WorkerLane{}
	for _, c := range completions {
		if !c.OK {
			continue
		}
		l := byWorker[c.Worker]
		if l == nil {
			l = &WorkerLane{Worker: c.Worker, FirstStart: float64(c.Start)}
			byWorker[c.Worker] = l
		}
		l.Tasks++
		l.BusySec += float64(c.End - c.Start)
		if float64(c.Start) < l.FirstStart {
			l.FirstStart = float64(c.Start)
		}
		if float64(c.End) > l.LastEnd {
			l.LastEnd = float64(c.End)
		}
	}
	out := make([]WorkerLane, 0, len(byWorker))
	for _, l := range byWorker {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Utilisation returns busy time over lane span (0 for an empty lane).
func (l WorkerLane) Utilisation() float64 {
	span := l.LastEnd - l.FirstStart
	if span <= 0 {
		return 0
	}
	u := l.BusySec / span
	return u
}

// Gantt renders a fixed-width text timeline, one row per worker, '#' for
// busy buckets and '.' for idle, plus a per-row task count. width is the
// number of buckets (default 60).
func Gantt(res simrun.Result, width int) string {
	if width <= 0 {
		width = 60
	}
	if res.MakespanSec <= 0 || len(res.Completions) == 0 {
		return "(empty run)\n"
	}
	type span struct{ start, end float64 }
	byWorker := map[string][]span{}
	for _, c := range res.Completions {
		if !c.OK {
			continue
		}
		byWorker[c.Worker] = append(byWorker[c.Worker], span{float64(c.Start), float64(c.End)})
	}
	workers := make([]string, 0, len(byWorker))
	for w := range byWorker {
		workers = append(workers, w)
	}
	sort.Strings(workers)

	var b strings.Builder
	bucket := res.MakespanSec / float64(width)
	fmt.Fprintf(&b, "timeline: %.1fs total, one column = %.2fs\n", res.MakespanSec, bucket)
	for _, w := range workers {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range byWorker[w] {
			lo := int(s.start / bucket)
			hi := int(s.end / bucket)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-8s |%s| %d tasks\n", w, row, len(byWorker[w]))
	}
	return b.String()
}

// Summary renders per-worker utilisation aggregates.
func Summary(res simrun.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %8s\n", "worker", "tasks", "busy(s)", "span(s)", "util")
	for _, l := range Lanes(res.Completions) {
		fmt.Fprintf(&b, "%-10s %8d %10.1f %10.1f %7.1f%%\n",
			l.Worker, l.Tasks, l.BusySec, l.LastEnd-l.FirstStart, 100*l.Utilisation())
	}
	fmt.Fprintf(&b, "makespan %.1fs, transfer wall %.1fs, exec wall %.1fs, %.0f bytes moved\n",
		res.MakespanSec, res.TransferWallSec, res.ExecWallSec, res.BytesMoved)
	return b.String()
}

// DetectionTimeline renders the failure detector's suspect/declare/recover
// transitions as one line per event in virtual-time order, with a per-node
// tally footer — the operator's view of how partitions were interpreted.
func DetectionTimeline(transitions []fault.Transition) string {
	if len(transitions) == 0 {
		return "(no detector transitions)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s  %-10s %-9s %s\n", "t(s)", "node", "state", "missed")
	counts := map[string]map[fault.NodeState]int{}
	for _, tr := range transitions {
		fmt.Fprintf(&b, "%10.1f  %-10s %-9s %d\n", float64(tr.At), tr.Node, tr.State, tr.Missed)
		if counts[tr.Node] == nil {
			counts[tr.Node] = map[fault.NodeState]int{}
		}
		counts[tr.Node][tr.State]++
	}
	nodes := make([]string, 0, len(counts))
	for n := range counts {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		c := counts[n]
		fmt.Fprintf(&b, "%-10s suspected %d, recovered %d, declared %d\n",
			n, c[fault.Suspect], c[fault.Alive], c[fault.Declared])
	}
	return b.String()
}

// WriteCSV exports completions for external plotting.
func WriteCSV(w io.Writer, completions []simrun.Completion) error {
	if _, err := fmt.Fprintln(w, "task,worker,start_sec,end_sec,ok,attempt"); err != nil {
		return err
	}
	for _, c := range completions {
		if _, err := fmt.Fprintf(w, "%d,%s,%.6f,%.6f,%t,%d\n",
			c.Task, c.Worker, float64(c.Start), float64(c.End), c.OK, c.Attempt); err != nil {
			return err
		}
	}
	return nil
}
