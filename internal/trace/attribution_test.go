package trace

import (
	"strings"
	"testing"

	"frieda/internal/obs"
	"frieda/internal/obs/attrib"
	"frieda/internal/sim"
)

// sampleReport builds a small solved report by hand: 10s makespan split
// 6s compute / 3s network / 1s queue-wait across three segments.
func sampleReport() *attrib.Report {
	rep := &attrib.Report{
		MakespanSec: 10,
		Segments: []attrib.Segment{
			{From: "run-start", To: "task-start", Start: 0, End: 1, Cat: attrib.QueueWait, Sec: 1},
			{From: "task-start", To: "xfer-done", Start: 1, End: 4, Cat: attrib.NetworkTransfer, Sec: 3, Detail: "vm-0/up"},
			{From: "xfer-done", To: "task-done", Start: 4, End: 10, Cat: attrib.Compute, Sec: 5, InflateSec: 1},
		},
		TaskLatency: attrib.LatencyStats{Count: 4, P50: 2, P95: 3, P99: 3, Max: 3},
		Nodes:       4,
		Edges:       3,
	}
	rep.Blame[attrib.QueueWait] = 1
	rep.Blame[attrib.NetworkTransfer] = 3
	rep.Blame[attrib.Compute] = 5
	rep.Blame[attrib.StragglerInflation] = 1
	return rep
}

func TestAttributionReportRendering(t *testing.T) {
	out := AttributionReport(sampleReport())
	for _, want := range []string{
		"makespan 10.000s (4 nodes, 3 edges)",
		"compute", "network-transfer", "queue-wait", "straggler-inflation",
		"total                        10.000   100.0%",
		"tasks     n=4",
		"top segments (of 3):",
		"via vm-0/up",
		"(+1.000s inflation)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Largest blame renders first.
	if strings.Index(out, "compute") > strings.Index(out, "queue-wait") {
		t.Fatalf("blame rows not sorted by share:\n%s", out)
	}
	if got := AttributionReport(nil); got != "(no attribution recorded)\n" {
		t.Fatalf("nil report rendered %q", got)
	}
}

func TestAttributionDiffRendering(t *testing.T) {
	a := sampleReport()
	b := sampleReport()
	b.MakespanSec = 13
	b.Blame[attrib.NetworkTransfer] = 6
	out := AttributionDiff("base", a, "faulty", b)
	for _, want := range []string{
		"attribution diff: base (10.000s) vs faulty (13.000s), delta +3.000s",
		"network-transfer", "+3.000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff missing %q:\n%s", want, out)
		}
	}
	// The changed category sorts above unchanged ones.
	if strings.Index(out, "network-transfer") > strings.Index(out, "compute") {
		t.Fatalf("diff rows not sorted by |delta|:\n%s", out)
	}
	if got := AttributionDiff("a", nil, "b", b); got != "(attribution missing for one run)\n" {
		t.Fatalf("nil diff rendered %q", got)
	}
}

func TestEmitCriticalPath(t *testing.T) {
	eng := sim.NewEngine()
	tr := obs.NewTracer(eng, "run")
	rep := sampleReport()
	// A zero-width hop must be skipped.
	rep.Segments = append([]attrib.Segment{{From: "a", To: "b", Start: 0, End: 0, Cat: attrib.Unattributed}}, rep.Segments...)
	EmitCriticalPath(tr, rep)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("emitted %d spans, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Track != "critical-path" || e.Cat != "attrib" || e.Phase != obs.PhaseSpan {
			t.Fatalf("span %d on wrong lane: %+v", i, e)
		}
	}
	if evs[1].Name != "network-transfer" || evs[1].Args["via"] != "vm-0/up" {
		t.Fatalf("segment detail lost: %+v", evs[1])
	}
	if evs[2].Args["inflate_sec"] != 1.0 {
		t.Fatalf("inflation annotation lost: %+v", evs[2])
	}
	// Nil tracer and nil report are no-ops.
	EmitCriticalPath(nil, rep)
	EmitCriticalPath(tr, nil)
	if tr.Len() != 3 {
		t.Fatalf("no-op paths recorded events: %d", tr.Len())
	}
}
