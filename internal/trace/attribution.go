package trace

import (
	"fmt"
	"sort"
	"strings"

	"frieda/internal/obs"
	"frieda/internal/obs/attrib"
	"frieda/internal/sim"
)

// AttributionReport renders a solved attribution as the operator-facing
// blame table: category seconds sorted by share of the makespan, exact
// task/transfer latency percentiles, and the ten longest critical-path
// segments. Returns a note when attribution was disabled.
func AttributionReport(rep *attrib.Report) string {
	if rep == nil {
		return "(no attribution recorded)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical-path attribution: makespan %.3fs (%d nodes, %d edges)\n",
		rep.MakespanSec, rep.Nodes, rep.Edges)

	type row struct {
		cat attrib.Category
		sec float64
	}
	rows := make([]row, 0, attrib.NumCategories)
	for c := attrib.Category(0); c < attrib.NumCategories; c++ {
		if rep.Blame[c] > 0 {
			rows = append(rows, row{c, rep.Blame[c]})
		}
	}
	// Largest blame first; category order breaks exact ties deterministically.
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].sec != rows[j].sec {
			return rows[i].sec > rows[j].sec
		}
		return rows[i].cat < rows[j].cat
	})
	fmt.Fprintf(&b, "%-22s %12s %8s\n", "category", "seconds", "share")
	for _, r := range rows {
		share := 0.0
		if rep.MakespanSec > 0 {
			share = 100 * r.sec / rep.MakespanSec
		}
		fmt.Fprintf(&b, "%-22s %12.3f %7.1f%%\n", r.cat, r.sec, share)
	}
	fmt.Fprintf(&b, "%-22s %12.3f %7.1f%%\n", "total", rep.BlameTotalSec(), 100.0)

	writeLatency := func(name string, ls attrib.LatencyStats) {
		if ls.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "%-9s n=%-5d p50 %.3fs  p95 %.3fs  p99 %.3fs  max %.3fs\n",
			name, ls.Count, ls.P50, ls.P95, ls.P99, ls.Max)
	}
	writeLatency("tasks", rep.TaskLatency)
	writeLatency("transfers", rep.TransferLatency)

	top := rep.TopSegments(10)
	if len(top) > 0 {
		fmt.Fprintf(&b, "top segments (of %d):\n", len(rep.Segments))
		for _, s := range top {
			line := fmt.Sprintf("  [%10.3f %10.3f] %8.3fs %-20s %s -> %s",
				s.Start, s.End, s.End-s.Start, s.Cat, s.From, s.To)
			if s.InflateSec > 0 {
				line += fmt.Sprintf(" (+%.3fs inflation)", s.InflateSec)
			}
			if s.Detail != "" {
				line += " via " + s.Detail
			}
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

// AttributionDiff renders a two-run blame differential: per-category
// seconds for each run and the delta, sorted by absolute delta — the view
// that answers "where did the regression go". Labels name the runs in the
// header.
func AttributionDiff(labelA string, a *attrib.Report, labelB string, b *attrib.Report) string {
	if a == nil || b == nil {
		return "(attribution missing for one run)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "attribution diff: %s (%.3fs) vs %s (%.3fs), delta %+.3fs\n",
		labelA, a.MakespanSec, labelB, b.MakespanSec, b.MakespanSec-a.MakespanSec)
	type row struct {
		cat    attrib.Category
		av, bv float64
	}
	rows := make([]row, 0, attrib.NumCategories)
	for c := attrib.Category(0); c < attrib.NumCategories; c++ {
		if a.Blame[c] != 0 || b.Blame[c] != 0 {
			rows = append(rows, row{c, a.Blame[c], b.Blame[c]})
		}
	}
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	sort.SliceStable(rows, func(i, j int) bool {
		di, dj := abs(rows[i].bv-rows[i].av), abs(rows[j].bv-rows[j].av)
		if di != dj {
			return di > dj
		}
		return rows[i].cat < rows[j].cat
	})
	fmt.Fprintf(&sb, "%-22s %12s %12s %12s\n", "category", labelShort(labelA), labelShort(labelB), "delta")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %12.3f %12.3f %+12.3f\n", r.cat, r.av, r.bv, r.bv-r.av)
	}
	fmt.Fprintf(&sb, "%-22s %12.3f %12.3f %+12.3f\n", "total",
		a.BlameTotalSec(), b.BlameTotalSec(), b.BlameTotalSec()-a.BlameTotalSec())
	diffLatency := func(name string, la, lb attrib.LatencyStats) {
		if la.Count == 0 && lb.Count == 0 {
			return
		}
		fmt.Fprintf(&sb, "%-9s p50 %+.3fs  p95 %+.3fs  p99 %+.3fs  max %+.3fs\n",
			name, lb.P50-la.P50, lb.P95-la.P95, lb.P99-la.P99, lb.Max-la.Max)
	}
	diffLatency("tasks", a.TaskLatency, b.TaskLatency)
	diffLatency("transfers", a.TransferLatency, b.TransferLatency)
	return sb.String()
}

// labelShort truncates a run label to its column width so diff headers stay
// aligned.
func labelShort(l string) string {
	if len(l) > 12 {
		return l[:12]
	}
	return l
}

// EmitCriticalPath decorates a tracer with the solved critical path as one
// highlight lane ("critical-path" track): each segment becomes a span named
// by its blame category, so the chain of binding waits reads as a single
// contiguous ribbon above the per-worker lanes in Perfetto. Zero-width
// segments (instantaneous hops) are skipped — they carry no blame. No-op
// when either side is disabled.
func EmitCriticalPath(tr *obs.Tracer, rep *attrib.Report) {
	if !tr.Enabled() || rep == nil {
		return
	}
	for _, s := range rep.Segments {
		if s.End <= s.Start {
			continue
		}
		args := obs.Args{"from": s.From, "to": s.To}
		if s.Detail != "" {
			args["via"] = s.Detail
		}
		if s.InflateSec > 0 {
			args["inflate_sec"] = s.InflateSec
		}
		tr.SpanAt("critical-path", "attrib", s.Cat.String(),
			sim.Time(s.Start), sim.Time(s.End), args)
	}
}
