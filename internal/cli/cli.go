// Package cli holds flag plumbing shared by the FRIEDA command-line tools:
// strategy flags, template parsing and report rendering.
package cli

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"frieda/internal/core"
	"frieda/internal/strategy"
)

// StrategyFlags registers the strategy-selection flags on fs and returns a
// function that resolves them into a validated configuration.
func StrategyFlags(fs *flag.FlagSet) func() (strategy.Config, error) {
	mode := fs.String("mode", "real-time", "partitioning mode: no-partition | pre-partition | real-time")
	locality := fs.String("locality", "remote", "data locality at start: remote | local")
	placement := fs.String("placement", "data-to-compute", "movement direction: data-to-compute | compute-to-data")
	grouping := fs.String("grouping", "single", "input grouping: single | one-to-all | pairwise-adjacent | all-to-all | sliding-window")
	assigner := fs.String("assigner", "round-robin", "pre-partition assignment: round-robin | blocked | size-balanced")
	multicore := fs.Bool("multicore", true, "clone the program once per worker core")
	prefetch := fs.Int("prefetch", 1, "real-time groups in flight per slot")
	common := fs.String("common", "", "comma-separated files staged to every node (e.g. a database)")
	return func() (strategy.Config, error) {
		cfg := strategy.Config{
			Grouping:  *grouping,
			Assigner:  *assigner,
			Multicore: *multicore,
			Prefetch:  *prefetch,
		}
		switch *mode {
		case "no-partition":
			cfg.Kind = strategy.NoPartition
		case "pre-partition":
			cfg.Kind = strategy.PrePartition
		case "real-time":
			cfg.Kind = strategy.RealTime
		default:
			return cfg, fmt.Errorf("unknown -mode %q", *mode)
		}
		switch *locality {
		case "remote":
			cfg.Locality = strategy.Remote
		case "local":
			cfg.Locality = strategy.Local
		default:
			return cfg, fmt.Errorf("unknown -locality %q", *locality)
		}
		switch *placement {
		case "data-to-compute":
			cfg.Placement = strategy.DataToCompute
		case "compute-to-data":
			cfg.Placement = strategy.ComputeToData
		default:
			return cfg, fmt.Errorf("unknown -placement %q", *placement)
		}
		if *common != "" {
			for _, f := range strings.Split(*common, ",") {
				if f = strings.TrimSpace(f); f != "" {
					cfg.CommonFiles = append(cfg.CommonFiles, f)
				}
			}
		}
		if err := cfg.Validate(); err != nil {
			return cfg, err
		}
		return cfg, nil
	}
}

// SplitTemplate parses a shell-ish template string into argv, honouring
// simple double-quoted segments: `compare -v "$inp1" $inp2`.
func SplitTemplate(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
		case r == ' ' && !inQuote:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in template %q", s)
	}
	flush()
	if len(out) == 0 {
		return nil, fmt.Errorf("empty template")
	}
	return out, nil
}

// PrintReport renders a run report as text.
func PrintReport(w io.Writer, r core.Report) {
	fmt.Fprintf(w, "strategy:  %s\n", r.Strategy)
	fmt.Fprintf(w, "groups:    %d (%d succeeded, %d failed)\n", r.Groups, r.Succeeded, r.Failed)
	fmt.Fprintf(w, "makespan:  %.3fs\n", r.MakespanSec)
	if r.TransferPhaseSec > 0 {
		fmt.Fprintf(w, "staging:   %.3fs\n", r.TransferPhaseSec)
	}
	fmt.Fprintf(w, "moved:     %d bytes\n", r.BytesMoved)
	byWorker := map[string]int{}
	for _, res := range r.Results {
		if res.OK {
			byWorker[res.Worker]++
		}
	}
	workers := make([]string, 0, len(byWorker))
	for name := range byWorker {
		workers = append(workers, name)
	}
	sort.Strings(workers)
	for _, name := range workers {
		fmt.Fprintf(w, "  %-10s %d tasks\n", name, byWorker[name])
	}
	for _, e := range r.WorkerErrors {
		fmt.Fprintf(w, "worker error: %s\n", e)
	}
}
