package cli

import (
	"flag"
	"strings"
	"testing"

	"frieda/internal/core"
	"frieda/internal/protocol"
	"frieda/internal/strategy"
)

func parseStrategy(t *testing.T, args ...string) (strategy.Config, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	resolve := StrategyFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return resolve()
}

func TestStrategyFlagsDefaults(t *testing.T) {
	cfg, err := parseStrategy(t)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != strategy.RealTime || cfg.Locality != strategy.Remote || !cfg.Multicore {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestStrategyFlagsFull(t *testing.T) {
	cfg, err := parseStrategy(t,
		"-mode", "pre-partition", "-locality", "local", "-placement", "compute-to-data",
		"-grouping", "pairwise-adjacent", "-assigner", "blocked",
		"-multicore=false", "-prefetch", "3", "-common", "db.bin, ref.idx")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != strategy.PrePartition || cfg.Locality != strategy.Local ||
		cfg.Placement != strategy.ComputeToData {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Grouping != "pairwise-adjacent" || cfg.Assigner != "blocked" || cfg.Multicore {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Prefetch != 3 {
		t.Fatalf("prefetch = %d", cfg.Prefetch)
	}
	if len(cfg.CommonFiles) != 2 || cfg.CommonFiles[1] != "ref.idx" {
		t.Fatalf("common = %v", cfg.CommonFiles)
	}
}

func TestStrategyFlagsRejections(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus"},
		{"-locality", "bogus"},
		{"-placement", "bogus"},
		{"-grouping", "bogus"},
		{"-assigner", "bogus"},
		// Contradiction caught by strategy validation:
		{"-mode", "real-time", "-locality", "local"},
	}
	for i, args := range cases {
		if _, err := parseStrategy(t, args...); err == nil {
			t.Errorf("case %d (%v) accepted", i, args)
		}
	}
}

func TestSplitTemplate(t *testing.T) {
	argv, err := SplitTemplate(`compare -v "$inp1 with space" $inp2`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"compare", "-v", "$inp1 with space", "$inp2"}
	if len(argv) != len(want) {
		t.Fatalf("argv = %v", argv)
	}
	for i := range want {
		if argv[i] != want[i] {
			t.Fatalf("argv[%d] = %q, want %q", i, argv[i], want[i])
		}
	}
}

func TestSplitTemplateErrors(t *testing.T) {
	if _, err := SplitTemplate(`app "unterminated`); err == nil {
		t.Fatal("unterminated quote accepted")
	}
	if _, err := SplitTemplate("   "); err == nil {
		t.Fatal("empty template accepted")
	}
}

func TestPrintReport(t *testing.T) {
	var b strings.Builder
	PrintReport(&b, core.Report{
		Strategy:         "real-time/remote",
		Groups:           3,
		Succeeded:        2,
		Failed:           1,
		MakespanSec:      1.5,
		TransferPhaseSec: 0.5,
		BytesMoved:       1024,
		Results: []protocol.TaskResult{
			{GroupIndex: 0, Worker: "w0", OK: true},
			{GroupIndex: 1, Worker: "w1", OK: true},
			{GroupIndex: 2, Worker: "w1", OK: false},
		},
		WorkerErrors: []string{"w2: crashed"},
	})
	out := b.String()
	for _, want := range []string{"real-time/remote", "3 (2 succeeded, 1 failed)", "1.500s", "staging", "1024 bytes", "w0", "w2: crashed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
