package history

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"frieda/internal/netsim"
	"frieda/internal/strategy"
)

func record(app, strat string, makespan float64) Record {
	return Record{App: app, Strategy: strat, Workers: 4, Slots: 16,
		MakespanSec: makespan, When: time.Unix(1341360000, 0)}
}

func TestStoreAddValidation(t *testing.T) {
	s := NewStore()
	if err := s.Add(Record{}); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := s.Add(Record{App: "a", Strategy: "s", MakespanSec: 0}); err == nil {
		t.Fatal("zero makespan accepted")
	}
	if err := s.Add(record("ALS", "real-time", 700)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreSaveLoad(t *testing.T) {
	s := NewStore()
	s.Add(record("ALS", "real-time", 700))
	s.Add(record("BLAST", "pre-partition", 4100))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("loaded %d records", s2.Len())
	}
	if got := s2.ForApp("ALS"); len(got) != 1 || got[0].MakespanSec != 700 {
		t.Fatalf("ForApp = %+v", got)
	}
	if err := s2.Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage load accepted")
	}
}

func TestEmpiricalPicksBestMean(t *testing.T) {
	s := NewStore()
	s.Add(record("ALS", "pre-partition/remote", 790))
	s.Add(record("ALS", "pre-partition/remote", 810))
	s.Add(record("ALS", "real-time/remote", 700))
	s.Add(record("ALS", "real-time/remote", 710))
	s.Add(record("BLAST", "real-time/remote", 3800))
	rec, err := s.Empirical("ALS", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Strategy != "real-time/remote" {
		t.Fatalf("recommended %q", rec.Strategy)
	}
	if rec.ExpectedMakespanSec != 705 {
		t.Fatalf("expected makespan %v", rec.ExpectedMakespanSec)
	}
	if _, err := s.Empirical("nope", 1); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := s.Empirical("BLAST", 5); err == nil {
		t.Fatal("minRuns not enforced")
	}
}

func TestModelResidentData(t *testing.T) {
	rec, cfg := Model(WorkloadProfile{DataResidentOnWorkers: true},
		ClusterProfile{Workers: 4, SlotsPerNode: 4, UplinkBps: netsim.Mbps(100)})
	if cfg.Locality != strategy.Local {
		t.Fatalf("resident data -> %s", rec.Strategy)
	}
}

func TestModelTransferBound(t *testing.T) {
	// The ALS profile: 8.75 GB to move, 1250 s single-core compute.
	rec, cfg := Model(
		WorkloadProfile{TotalInputBytes: 8.75e9, TotalComputeSec: 1250},
		ClusterProfile{Workers: 4, SlotsPerNode: 4, UplinkBps: netsim.Mbps(100)})
	if cfg.Kind != strategy.RealTime {
		t.Fatalf("ALS profile -> %s (%s)", rec.Strategy, rec.Reason)
	}
	if rec.ExpectedMakespanSec < 600 || rec.ExpectedMakespanSec > 800 {
		t.Fatalf("expected makespan %.0f, want ~700", rec.ExpectedMakespanSec)
	}
}

func TestModelVariableComputeBound(t *testing.T) {
	// The BLAST profile: small inputs, huge variable compute.
	rec, cfg := Model(
		WorkloadProfile{TotalInputBytes: 15e6, TotalComputeSec: 61200, CostVariance: 0.05},
		ClusterProfile{Workers: 4, SlotsPerNode: 4, UplinkBps: netsim.Mbps(100)})
	if cfg.Kind != strategy.RealTime {
		t.Fatalf("BLAST profile -> %s (%s)", rec.Strategy, rec.Reason)
	}
}

func TestModelUniformComputeBound(t *testing.T) {
	rec, cfg := Model(
		WorkloadProfile{TotalInputBytes: 1e6, TotalComputeSec: 10000, CostVariance: 0.001},
		ClusterProfile{Workers: 4, SlotsPerNode: 4, UplinkBps: netsim.Mbps(100)})
	if cfg.Kind != strategy.PrePartition {
		t.Fatalf("uniform profile -> %s (%s)", rec.Strategy, rec.Reason)
	}
}

func TestModelInvalidCluster(t *testing.T) {
	rec, _ := Model(WorkloadProfile{}, ClusterProfile{})
	if rec.Strategy != "invalid" {
		t.Fatalf("invalid cluster -> %q", rec.Strategy)
	}
}
