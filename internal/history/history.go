// Package history stores execution records and recommends data-management
// strategies from them — FRIEDA's announced future work: "adaptation
// strategies that use past historical information" and "the ability to
// select the best data management strategy based on past executions".
//
// Two advisors ship: an empirical one (best observed strategy for the
// application) and a model-based one that classifies a workload as
// transfer-bound or compute-bound from its byte/compute ratio against the
// provisioned bandwidth — the decision rule Section IV's results imply.
package history

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"frieda/internal/strategy"
)

// Record is one completed run.
type Record struct {
	// App names the application/workload.
	App string `json:"app"`
	// Strategy is the strategy description (strategy.Config.String()).
	Strategy string `json:"strategy"`
	// Workers and Slots describe the cluster size used.
	Workers int `json:"workers"`
	Slots   int `json:"slots"`
	// MakespanSec is the end-to-end run time.
	MakespanSec float64 `json:"makespan_sec"`
	// BytesMoved is the master's payload volume.
	BytesMoved float64 `json:"bytes_moved"`
	// Succeeded and Failed count terminal tasks.
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	// When is the completion time.
	When time.Time `json:"when"`
}

// Store is a concurrency-safe record collection with JSON persistence.
type Store struct {
	mu      sync.RWMutex
	records []Record
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add validates and appends a record.
func (s *Store) Add(r Record) error {
	if r.App == "" || r.Strategy == "" {
		return fmt.Errorf("history: record needs app and strategy")
	}
	if r.MakespanSec <= 0 {
		return fmt.Errorf("history: non-positive makespan")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, r)
	return nil
}

// Len returns the record count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// ForApp returns the records for one application.
func (s *Store) ForApp(app string) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.records {
		if r.App == app {
			out = append(out, r)
		}
	}
	return out
}

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.records)
}

// Load replaces the store's contents from JSON.
func (s *Store) Load(r io.Reader) error {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = records
	return nil
}

// Recommendation is an advisor's answer.
type Recommendation struct {
	// Strategy is the recommended configuration description.
	Strategy string
	// Reason explains the choice.
	Reason string
	// ExpectedMakespanSec is the predicted or observed run time (0 when
	// unknown).
	ExpectedMakespanSec float64
}

// Empirical recommends the strategy with the lowest mean makespan among an
// application's past runs (requiring minRuns observations per strategy; 0
// means 1).
func (s *Store) Empirical(app string, minRuns int) (Recommendation, error) {
	if minRuns <= 0 {
		minRuns = 1
	}
	records := s.ForApp(app)
	if len(records) == 0 {
		return Recommendation{}, fmt.Errorf("history: no runs recorded for %q", app)
	}
	type agg struct {
		sum float64
		n   int
	}
	byStrategy := map[string]*agg{}
	for _, r := range records {
		a := byStrategy[r.Strategy]
		if a == nil {
			a = &agg{}
			byStrategy[r.Strategy] = a
		}
		a.sum += r.MakespanSec
		a.n++
	}
	names := make([]string, 0, len(byStrategy))
	for name, a := range byStrategy {
		if a.n >= minRuns {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return Recommendation{}, fmt.Errorf("history: no strategy for %q has %d runs", app, minRuns)
	}
	sort.Slice(names, func(i, j int) bool {
		ai, aj := byStrategy[names[i]], byStrategy[names[j]]
		mi, mj := ai.sum/float64(ai.n), aj.sum/float64(aj.n)
		if mi != mj {
			return mi < mj
		}
		return names[i] < names[j]
	})
	best := byStrategy[names[0]]
	return Recommendation{
		Strategy:            names[0],
		Reason:              fmt.Sprintf("lowest mean makespan over %d past run(s)", best.n),
		ExpectedMakespanSec: best.sum / float64(best.n),
	}, nil
}

// WorkloadProfile summarises a workload for the model-based advisor.
type WorkloadProfile struct {
	// TotalInputBytes is the data to move if remote.
	TotalInputBytes float64
	// TotalComputeSec is the aggregate single-core compute.
	TotalComputeSec float64
	// CostVariance is the squared coefficient of variation of per-task
	// cost; high variance favours real-time balancing.
	CostVariance float64
	// DataResidentOnWorkers marks inputs already placed node-locally.
	DataResidentOnWorkers bool
}

// ClusterProfile summarises the resources.
type ClusterProfile struct {
	Workers      int
	SlotsPerNode int
	UplinkBps    float64 // master/source uplink in bits per second
	LocalReadBps float64 // bytes per second
}

// Model recommends a strategy from first principles, mirroring the paper's
// Section IV findings: move computation to resident data when possible;
// otherwise pick real-time when the workload is transfer-bound (overlap
// wins) or cost-variable (balance wins), and pre-partitioning only for the
// uniform compute-bound corner where it matches real-time anyway.
func Model(w WorkloadProfile, c ClusterProfile) (Recommendation, strategy.Config) {
	if c.Workers < 1 || c.SlotsPerNode < 1 || c.UplinkBps <= 0 {
		return Recommendation{Strategy: "invalid", Reason: "invalid cluster profile"}, strategy.Config{}
	}
	if w.DataResidentOnWorkers {
		cfg := strategy.PrePartitionedLocal
		return Recommendation{
			Strategy: cfg.String(),
			Reason:   "inputs already resident: moving computation to data avoids all transfer (Fig. 7a)",
		}, cfg
	}
	slots := float64(c.Workers * c.SlotsPerNode)
	transferSec := w.TotalInputBytes * 8 / c.UplinkBps
	execSec := w.TotalComputeSec / slots
	switch {
	case transferSec > execSec:
		cfg := strategy.RealTimeRemote
		return Recommendation{
			Strategy:            cfg.String(),
			Reason:              fmt.Sprintf("transfer-bound (%.0fs transfer vs %.0fs exec): overlap hides execution (Fig. 6a)", transferSec, execSec),
			ExpectedMakespanSec: transferSec,
		}, cfg
	case w.CostVariance > 0.01:
		cfg := strategy.RealTimeRemote
		return Recommendation{
			Strategy:            cfg.String(),
			Reason:              "compute-bound with variable task cost: pull-based balancing avoids stragglers (Fig. 6b)",
			ExpectedMakespanSec: execSec + transferSec,
		}, cfg
	default:
		cfg := strategy.PrePartitionedRemote
		return Recommendation{
			Strategy:            cfg.String(),
			Reason:              "uniform compute-bound workload: static partitioning is optimal and simplest (Section III-A)",
			ExpectedMakespanSec: execSec + transferSec,
		}, cfg
	}
}
