// Package frieda is a Go implementation of FRIEDA — Flexible Robust
// Intelligent Elastic Data Management in Cloud Environments (Ghoshal &
// Ramakrishnan, SC 2012 companion).
//
// FRIEDA runs unmodified data-parallel programs over transient cloud
// resources while giving the application control over how input data is
// partitioned, placed and moved. A control-plane controller configures an
// execution-plane master and symmetric workers; the master partitions the
// input file list (single / one-to-all / pairwise-adjacent / all-to-all
// groupings), moves payloads, and farms out executions under one of three
// strategies: no-partitioning (full replication), pre-partitioning (strict
// transfer-then-execute phases) or real-time (lazy pull, inherently
// load-balanced, transfer overlapped with computation).
//
// Two entry points cover the two ways to use the library:
//
//   - Run deploys a real controller/master/worker ensemble (in-process
//     goroutines over channels, or across machines via TCP) and executes a
//     real program — a Go function or an external command template such as
//     {"blastp", "-query", "$inp1"}.
//
//   - Simulate replays the same strategy logic on a virtual-time cluster
//     model (flow-level network, storage tiers, failure injection) to
//     explore strategy choices at paper scale in milliseconds; this is the
//     engine behind the reproduction of the paper's Table I and Figures
//     6–7 (see cmd/friedabench).
package frieda

import (
	"context"
	"fmt"
	"path/filepath"

	"frieda/internal/catalog"
	"frieda/internal/core"
	"frieda/internal/history"
	"frieda/internal/strategy"
	"frieda/internal/transport"
)

// Strategy configures data management; see the strategy presets.
type Strategy = strategy.Config

// Re-exported strategy vocabulary.
type (
	// Kind is the partitioning mode (NoPartition, PrePartition, RealTime).
	Kind = strategy.Kind
	// Locality says whether data starts remote or node-local.
	Locality = strategy.Locality
	// Placement is the data-vs-computation movement direction.
	Placement = strategy.Placement
)

// Strategy enum values.
const (
	NoPartition  = strategy.NoPartition
	PrePartition = strategy.PrePartition
	RealTime     = strategy.RealTime

	Remote = strategy.Remote
	Local  = strategy.Local

	DataToCompute = strategy.DataToCompute
	ComputeToData = strategy.ComputeToData
)

// Strategy presets from the paper's evaluation.
var (
	// PrePartitionedLocal computes where the data already lives (Fig. 5b).
	PrePartitionedLocal = strategy.PrePartitionedLocal
	// PrePartitionedRemote transfers each partition up front, then
	// executes (Fig. 5a).
	PrePartitionedRemote = strategy.PrePartitionedRemote
	// RealTimeRemote distributes lazily on worker request (Fig. 5c).
	RealTimeRemote = strategy.RealTimeRemote
	// CommonData replicates the full dataset to every node.
	CommonData = strategy.CommonData
)

// Task, Program and store types for in-process programs.
type (
	// Task is one execution unit handed to a Program.
	Task = core.Task
	// Program executes one task; FuncProgram and ExecProgram implement it.
	Program = core.Program
	// FuncProgram adapts a Go function to Program.
	FuncProgram = core.FuncProgram
	// ExecProgram runs an external command template with $inpN bindings.
	ExecProgram = core.ExecProgram
	// Report summarises a finished run.
	Report = core.Report
	// Store is a worker-side file repository; NewMemStore and NewDirStore
	// build the two implementations.
	Store = core.Store
)

// Store constructors, re-exported for output sinks and custom workers.
var (
	// NewMemStore returns an in-memory store.
	NewMemStore = core.NewMemStore
)

// NewDirStore returns a disk-backed store rooted at dir.
func NewDirStore(dir string) (Store, error) { return core.NewDirStore(dir) }

// Dataset is a named input collection served by the master.
type Dataset struct {
	source catalog.Source
}

// DirDataset serves the files under root (the paper's input directory).
func DirDataset(root string) Dataset {
	return Dataset{source: catalog.NewDirSource(root)}
}

// MemDataset serves in-memory files; convenient for tests and generators.
func MemDataset(files map[string][]byte) Dataset {
	src := catalog.NewMemSource()
	for name, data := range files {
		src.Put(name, data)
	}
	return Dataset{source: src}
}

// RunConfig describes one deployment.
type RunConfig struct {
	// Strategy selects the data-management behaviour. Zero value is
	// real-time remote with no grouping.
	Strategy Strategy
	// Dataset is the input collection. Required.
	Dataset Dataset
	// Program runs tasks in-process. Exactly one of Program/Template is
	// required.
	Program Program
	// Template is the execution syntax for external programs, e.g.
	// {"app", "arg1", "$inp1"}. Workers bind $inpN to received file paths.
	Template []string
	// Workers is the worker-node count (required, >= 1).
	Workers int
	// CoresPerWorker models the node core count (default 4, the paper's
	// c1.xlarge).
	CoresPerWorker int
	// WorkDir, when set, gives each worker a disk-backed store under
	// WorkDir/<name> (required for Template programs). Empty means
	// in-memory stores.
	WorkDir string
	// ThrottleBytesPerSec, when > 0, rate-limits all in-memory transport
	// links through one shared token bucket — emulating the paper's
	// provisioned 100 Mbps uplink at laptop scale.
	ThrottleBytesPerSec float64
	// Recover enables failed-task requeue (the paper's future-work
	// recovery); off, failed workers are isolated only.
	Recover bool
	// MaxRetries bounds per-group retries under Recover (default 2).
	MaxRetries int
	// OutputSink, when set, collects result files programs register with
	// Task.AddOutput — the paper's "results transferred to the master"
	// option. Nil leaves outputs on the workers (the evaluated setup).
	OutputSink Store
}

// Run deploys controller, master and workers in-process and executes the
// workload to completion.
func Run(ctx context.Context, cfg RunConfig) (Report, error) {
	if cfg.Dataset.source == nil {
		return Report{}, fmt.Errorf("frieda: RunConfig needs a Dataset")
	}
	if (cfg.Program == nil) == (len(cfg.Template) == 0) {
		return Report{}, fmt.Errorf("frieda: exactly one of Program or Template is required")
	}
	if cfg.Workers < 1 {
		return Report{}, fmt.Errorf("frieda: %d workers", cfg.Workers)
	}
	if cfg.CoresPerWorker == 0 {
		cfg.CoresPerWorker = 4
	}
	if cfg.CoresPerWorker < 1 {
		return Report{}, fmt.Errorf("frieda: %d cores per worker", cfg.CoresPerWorker)
	}
	var limiter *transport.Limiter
	if cfg.ThrottleBytesPerSec > 0 {
		limiter = transport.NewLimiter(cfg.ThrottleBytesPerSec, cfg.ThrottleBytesPerSec/4)
	}
	tr := transport.NewMem(limiter)

	ctl, err := core.NewController(core.ControllerConfig{
		Strategy:        cfg.Strategy,
		Template:        cfg.Template,
		Transport:       tr,
		MasterAddr:      "frieda-master",
		InProcessMaster: true,
		Master: core.MasterConfig{
			Source:     cfg.Dataset.source,
			Recover:    cfg.Recover,
			MaxRetries: cfg.MaxRetries,
			OutputSink: cfg.OutputSink,
		},
		Workers: cfg.Workers,
	})
	if err != nil {
		return Report{}, err
	}
	if err := ctl.Start(ctx); err != nil {
		return Report{}, err
	}
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("w%d", i)
		var store core.Store
		if cfg.WorkDir != "" {
			store, err = core.NewDirStore(filepath.Join(cfg.WorkDir, name))
			if err != nil {
				return Report{}, err
			}
		} else {
			store = core.NewMemStore()
		}
		if _, err := ctl.SpawnWorker(ctx, core.WorkerConfig{
			Name:    name,
			Cores:   cfg.CoresPerWorker,
			Store:   store,
			Program: cfg.Program,
		}); err != nil {
			return Report{}, err
		}
	}
	report, err := ctl.Wait(ctx)
	if err != nil {
		return Report{}, err
	}
	if serr := ctl.Shutdown(); serr != nil && err == nil {
		// Shutdown failures after a successful run are advisory.
		report.WorkerErrors = append(report.WorkerErrors, "shutdown: "+serr.Error())
	}
	return report, nil
}

// Advise recommends a strategy for a workload profile on a cluster profile
// — the controller "intelligence" the paper's future work describes.
func Advise(totalInputBytes, totalComputeSec, costVariance float64, dataResident bool,
	workers, slotsPerNode int, uplinkBps float64) (string, string, Strategy) {
	rec, cfg := history.Model(
		history.WorkloadProfile{
			TotalInputBytes:       totalInputBytes,
			TotalComputeSec:       totalComputeSec,
			CostVariance:          costVariance,
			DataResidentOnWorkers: dataResident,
		},
		history.ClusterProfile{Workers: workers, SlotsPerNode: slotsPerNode, UplinkBps: uplinkBps},
	)
	return rec.Strategy, rec.Reason, cfg
}
