// Elastic demonstrates FRIEDA's elasticity on the virtual-time simulator:
// the same workload run on a fixed two-node cluster, with workers added
// mid-run through the controller (the paper's Section V-A mechanism), and
// under the watermark autoscaler this repository adds as the announced
// future work ("make addition and removal of workers transparent to the
// user").
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"

	"frieda"
	"frieda/internal/cloud"
	"frieda/internal/elastic"
	"frieda/internal/sim"
	"frieda/internal/simrun"
	"frieda/internal/strategy"
)

func main() {
	wl := frieda.UniformSimWorkload("analysis", 200, 4.0, 2_000_000)

	// Baseline: two workers for the whole run.
	base, err := frieda.Simulate(frieda.SimConfig{
		Strategy: frieda.RealTimeRemote,
		Workers:  2,
	}, wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed 2 workers:            %7.1fs makespan\n", base.MakespanSec)

	// Elastic: two more VMs join a third of the way in. Real-time
	// partitioning gives them work immediately — no reconfiguration.
	grown, err := frieda.Simulate(frieda.SimConfig{
		Strategy:       frieda.RealTimeRemote,
		Workers:        2,
		AddWorkerAtSec: []float64{base.MakespanSec / 3, base.MakespanSec / 3},
	}, wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2 workers + 2 added later:  %7.1fs makespan (%.0f%% faster)\n",
		grown.MakespanSec, 100*(1-grown.MakespanSec/base.MakespanSec))
	for worker, n := range grown.PerWorker {
		fmt.Printf("  %-8s executed %d tasks\n", worker, n)
	}

	// Fully transparent elasticity: the watermark autoscaler watches queue
	// depth and utilisation and sizes the fleet itself.
	fmt.Println()
	auto, decisions, err := autoscaledRun()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("autoscaler (1→max 6):       %7.1fs makespan, %d scaling action(s)\n",
		auto.MakespanSec, decisions)

	// Scale-in the other direction: a worker leaves gracefully mid-run
	// (drained through the controller, its queue absorbed by the rest).
	fmt.Println()
	fmt.Println("the real runtime drains workers the same way:")
	fmt.Println("  frieda-controller -master host:7001 -remove vm-2")
}

// autoscaledRun executes the same task mix starting from one worker with
// the autoscaler deciding the fleet size.
func autoscaledRun() (simrun.Result, int, error) {
	eng := sim.NewEngine()
	cluster := cloud.New(eng, cloud.Options{Seed: 1, InstantBoot: true})
	vms, err := cluster.Provision(2, cloud.C1XLarge) // source + first worker
	if err != nil {
		return simrun.Result{}, 0, err
	}
	eng.RunUntil(eng.Now())
	tasks := make([]simrun.TaskSpec, 200)
	for i := range tasks {
		tasks[i] = simrun.TaskSpec{Index: i, ComputeSec: 4.0}
	}
	runner, err := simrun.NewRunner(cluster, vms[0], simrun.Config{
		Strategy: strategy.Config{Kind: strategy.RealTime, Multicore: true},
	}, simrun.Workload{Name: "auto", Tasks: tasks})
	if err != nil {
		return simrun.Result{}, 0, err
	}
	runner.AddWorker(vms[1])
	scaler, err := elastic.NewAutoscaler(eng,
		elastic.Policy{MinWorkers: 1, MaxWorkers: 6, CooldownSec: 15},
		&simrun.ScalerActions{Cluster: cluster, Runner: runner, Instance: cloud.C1XLarge},
		10)
	if err != nil {
		return simrun.Result{}, 0, err
	}
	scaler.Start()
	var res simrun.Result
	finished := false
	if err := runner.Start(func(r simrun.Result) {
		res = r
		finished = true
		scaler.Stop()
	}); err != nil {
		return simrun.Result{}, 0, err
	}
	for !finished && eng.Step() {
	}
	return res, len(scaler.Decisions), nil
}
