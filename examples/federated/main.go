// Federated demonstrates the topology awareness the paper's introduction
// calls for ("the cloud data-management additionally needs to be network
// topology aware in federated cloud sites"): the ALS image set lives at
// site A; compute workers can be placed at site A or at a remote site B
// behind a 50 Mbps / 50 ms WAN. The experiment shows placement is free
// until the WAN becomes the aggregate bottleneck — and that the advisor's
// transfer-bound rule predicts exactly where that happens.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"frieda"
	"frieda/internal/experiments"
	"frieda/internal/netsim"
)

func main() {
	wl := experiments.ALSWorkload(0.2) // 250 images; full scale works too
	fmt.Println("ALS image analysis, data at site A; 4 workers split across sites:")
	for _, remote := range []int{0, 1, 2, 3, 4} {
		res, err := experiments.RunFederated(wl, 4-remote, remote, netsim.Mbps(50), 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d local + %d remote: %7.1fs makespan\n", 4-remote, remote, res.MakespanSec)
	}

	fmt.Println()
	fmt.Println("the advisor's placement rule for this workload:")
	name, reason, _ := frieda.Advise(
		wl.TotalInputBytes(), wl.TotalComputeSec(), 0.006, false, 4, 4, 100e6)
	fmt.Printf("  %s\n  because %s\n", name, reason)
	fmt.Println()
	fmt.Println("reading: transfer-bound work tolerates remote workers only while")
	fmt.Println("the data source's uplink, not the WAN, is the binding constraint.")
}
