// Faulttolerance demonstrates FRIEDA's robustness story in both modes the
// repository implements:
//
//  1. The published behaviour — a failed worker is automatically isolated
//     (it receives no more data), its in-flight work is abandoned, and the
//     controller records the failure.
//  2. The paper's announced future work — recovery: lost work is requeued
//     onto surviving workers and the run completes in full.
//
// Both are shown on the virtual-time simulator with a scripted VM crash,
// then on the real runtime with a flaky program and task-level retries.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"frieda"
)

func main() {
	wl := frieda.UniformSimWorkload("job", 240, 3.0, 500_000)

	// A worker crashes 20 s in. Published behaviour: isolate.
	isolated, err := frieda.Simulate(frieda.SimConfig{
		Strategy:  frieda.RealTimeRemote,
		Workers:   3,
		FailAtSec: map[int]float64{1: 20},
	}, wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolation (paper):   %3d/%3d tasks completed, %.1fs\n",
		isolated.Succeeded, len(wl.Tasks), isolated.MakespanSec)

	// Future-work recovery: same crash, lost work requeued.
	recovered, err := frieda.Simulate(frieda.SimConfig{
		Strategy:   frieda.RealTimeRemote,
		Workers:    3,
		FailAtSec:  map[int]float64{1: 20},
		Recover:    true,
		MaxRetries: 3,
	}, wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery (extension): %3d/%3d tasks completed, %.1fs\n\n",
		recovered.Succeeded, len(wl.Tasks), recovered.MakespanSec)

	// Real runtime: a program that fails on first contact with each input
	// recovers through task-level retry.
	files := map[string][]byte{}
	for i := 0; i < 10; i++ {
		files[fmt.Sprintf("in%02d.dat", i)] = []byte("payload")
	}
	var mu sync.Mutex
	attempts := map[int]int{}
	flaky := frieda.FuncProgram(func(ctx context.Context, task frieda.Task) (string, error) {
		mu.Lock()
		attempts[task.GroupIndex]++
		n := attempts[task.GroupIndex]
		mu.Unlock()
		if n == 1 {
			return "", fmt.Errorf("transient fault on attempt 1")
		}
		return fmt.Sprintf("ok after %d attempts", n), nil
	})
	report, err := frieda.Run(context.Background(), frieda.RunConfig{
		Strategy:   frieda.RealTimeRemote,
		Dataset:    frieda.MemDataset(files),
		Program:    flaky,
		Workers:    2,
		Recover:    true,
		MaxRetries: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real runtime with retries: %d/%d succeeded (every task failed once first)\n",
		report.Succeeded, report.Groups)
}
