// Imagepipeline reproduces the paper's light-source (ALS) use case end to
// end at laptop scale: it synthesises a series of beamline-like PGM frames,
// then FRIEDA farms pairwise-adjacent comparisons (NCC/SSIM/PSNR) across
// workers under the real-time strategy — two large files in, one similarity
// verdict out, exactly the data-heavy access pattern of Figure 6a.
//
// Afterwards it asks the strategy advisor the Figure 7a question — move the
// data or move the computation? — for the paper-scale version of this
// workload.
//
//	go run ./examples/imagepipeline
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"frieda"
	"frieda/internal/workload/imagecmp"
	"frieda/internal/workload/imggen"
)

func main() {
	// Synthesise 16 consecutive beamline frames (256×256 to keep the
	// example quick; the paper's set is 1250 multi-MB images).
	frames := imggen.Series(imggen.Params{Width: 256, Height: 256, Seed: 42, Drift: 5}, 16)
	files := map[string][]byte{}
	for i, frame := range frames {
		var buf bytes.Buffer
		if err := imagecmp.WritePGM(&buf, frame); err != nil {
			log.Fatal(err)
		}
		files[fmt.Sprintf("frame%03d.pgm", i)] = buf.Bytes()
	}

	compare := frieda.FuncProgram(func(ctx context.Context, task frieda.Task) (string, error) {
		load := func(name string) (*imagecmp.Image, error) {
			rc, err := task.Store.Open(name)
			if err != nil {
				return nil, err
			}
			defer rc.Close()
			return imagecmp.ReadPGM(rc)
		}
		a, err := load(task.Inputs[0])
		if err != nil {
			return "", err
		}
		b, err := load(task.Inputs[1])
		if err != nil {
			return "", err
		}
		r, err := imagecmp.Compare(a, b)
		if err != nil {
			return "", err
		}
		verdict := "DIFFERENT"
		if imagecmp.Similar(r, 0.5) {
			verdict = "similar"
		}
		return fmt.Sprintf("%s vs %s: %s (%s)", task.Inputs[0], task.Inputs[1], verdict, r), nil
	})

	strat := frieda.RealTimeRemote
	strat.Grouping = "pairwise-adjacent" // (f0,f1), (f2,f3), ... — the ALS grouping
	report, err := frieda.Run(context.Background(), frieda.RunConfig{
		Strategy: strat,
		Dataset:  frieda.MemDataset(files),
		Program:  compare,
		Workers:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compared %d pairs on 4 workers, %.1f KB moved\n\n",
		report.Succeeded, float64(report.BytesMoved)/1024)
	for _, res := range report.Results {
		fmt.Println(" ", res.Output)
	}

	// The Figure 7a question at paper scale: 1250 × 7 MB images, 2 s per
	// comparison, 4 × 4-core workers on 100 Mbps.
	name, reason, _ := frieda.Advise(8.75e9, 1250, 0.006, false, 4, 4, 100e6)
	fmt.Printf("\nadvisor (data at the source): %s\n  because %s\n", name, reason)
	name, reason, _ = frieda.Advise(8.75e9, 1250, 0.006, true, 4, 4, 100e6)
	fmt.Printf("advisor (data already on workers): %s\n  because %s\n", name, reason)
}
