// Blastfarm reproduces the paper's bioinformatics use case end to end at
// laptop scale: synthetic protein queries searched against a common
// database with the built-in BLAST-like aligner. The database is declared a
// CommonFile, so FRIEDA stages it to every node before execution — the
// "data-base must be available to each task" requirement that rules out
// partitioning it — while the queries are partitioned in real time, whose
// pull-based balancing absorbs the highly variable per-query search cost
// (Figure 6b).
//
//	go run ./examples/blastfarm
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sort"

	"frieda"
	"frieda/internal/workload/blast"
	"frieda/internal/workload/seqgen"
)

func main() {
	// Synthetic workload: 24 queries vs a 60-sequence database with
	// planted homologs (the paper used 7500 real queries).
	wl := seqgen.NewWorkload(seqgen.WorkloadParams{
		Seed: 7, Queries: 24, DBSequences: 60, HomologFraction: 0.5,
	})
	files := map[string][]byte{}
	var db bytes.Buffer
	if err := blast.WriteFASTA(&db, wl.Database); err != nil {
		log.Fatal(err)
	}
	files["nr.fasta"] = db.Bytes()
	for _, q := range wl.Queries {
		var buf bytes.Buffer
		if err := blast.WriteFASTA(&buf, []blast.Sequence{q}); err != nil {
			log.Fatal(err)
		}
		files[q.ID+".fa"] = buf.Bytes()
	}

	// The "application": load the resident database, search the query.
	search := frieda.FuncProgram(func(ctx context.Context, task frieda.Task) (string, error) {
		dbReader, err := task.Store.Open("nr.fasta")
		if err != nil {
			return "", fmt.Errorf("database not staged: %w", err)
		}
		defer dbReader.Close()
		database, err := blast.LoadDB(dbReader, 3)
		if err != nil {
			return "", err
		}
		qReader, err := task.Store.Open(task.Inputs[0])
		if err != nil {
			return "", err
		}
		defer qReader.Close()
		queries, err := blast.ParseFASTA(qReader)
		if err != nil {
			return "", err
		}
		hits, err := blast.Search(database, queries[0], blast.DefaultParams())
		if err != nil {
			return "", err
		}
		if len(hits) == 0 {
			return fmt.Sprintf("%s: no hit", queries[0].ID), nil
		}
		best := hits[0]
		summary := fmt.Sprintf("%s: best hit %s score=%d bits=%.1f E=%.2g",
			queries[0].ID, best.SubjectID, best.Score, best.BitScore, best.EValue)
		// Render the residue-level alignment for strong hits, as blastp
		// would.
		if best.BitScore > 50 {
			aln, err := blast.Align(queries[0].Residues,
				database.Sequence(best.SubjectIndex).Residues, 0, 0)
			if err == nil {
				summary += fmt.Sprintf(" identity=%.0f%%", 100*aln.IdentityFraction())
			}
		}
		return summary, nil
	})

	strat := frieda.RealTimeRemote
	strat.CommonFiles = []string{"nr.fasta"} // staged to every node up front
	report, err := frieda.Run(context.Background(), frieda.RunConfig{
		Strategy: strat,
		Dataset:  frieda.MemDataset(files),
		Program:  search,
		Workers:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d queries against %d db sequences on 4 workers\n\n",
		report.Succeeded, len(wl.Database))
	lines := make([]string, 0, len(report.Results))
	for _, res := range report.Results {
		lines = append(lines, res.Output)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(" ", l)
	}
}
