// Quickstart: run a tiny data-parallel job under FRIEDA in one process.
//
// A word-count program (a Go function standing in for an unmodified
// application binary) runs over twelve in-memory text files on three
// simulated worker nodes with real-time data partitioning — the strategy
// the paper recommends by default: lazy distribution, inherent load
// balancing, transfer overlapped with computation.
//
//	go run ./examples/quickstart
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"sort"

	"frieda"
)

func main() {
	// Twelve input files; FRIEDA's partition generator will make each one
	// a task (the default "single" grouping).
	files := map[string][]byte{}
	for i := 0; i < 12; i++ {
		files[fmt.Sprintf("doc%02d.txt", i)] = []byte(
			fmt.Sprintf("frieda moves data so programs%[1]d do not have to "+
				"programs%[1]d like data close by", i))
	}

	// The "application": counts words in its input file. FRIEDA never
	// modifies application code; it binds inputs at run time.
	wordCount := frieda.FuncProgram(func(ctx context.Context, task frieda.Task) (string, error) {
		rc, err := task.Store.Open(task.Inputs[0])
		if err != nil {
			return "", err
		}
		defer rc.Close()
		sc := bufio.NewScanner(rc)
		sc.Split(bufio.ScanWords)
		n := 0
		for sc.Scan() {
			n++
		}
		return fmt.Sprintf("%s: %d words", task.Inputs[0], n), sc.Err()
	})

	report, err := frieda.Run(context.Background(), frieda.RunConfig{
		Strategy: frieda.RealTimeRemote,
		Dataset:  frieda.MemDataset(files),
		Program:  wordCount,
		Workers:  3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strategy: %s\n", report.Strategy)
	fmt.Printf("%d/%d tasks succeeded, %d bytes moved, %.3fs\n\n",
		report.Succeeded, report.Groups, report.BytesMoved, report.MakespanSec)
	outputs := make([]string, 0, len(report.Results))
	for _, res := range report.Results {
		outputs = append(outputs, fmt.Sprintf("%-28s (on %s)", res.Output, res.Worker))
	}
	sort.Strings(outputs)
	for _, line := range outputs {
		fmt.Println(line)
	}
}
