package frieda

import (
	"fmt"

	"frieda/internal/catalog"
	"frieda/internal/cloud"
	"frieda/internal/partition"
	"frieda/internal/sim"
	"frieda/internal/simrun"
)

// Simulation types, re-exported for the public API.
type (
	// SimTask is one simulated task (inputs + single-core compute cost).
	SimTask = simrun.TaskSpec
	// SimWorkload is a simulated task collection.
	SimWorkload = simrun.Workload
	// SimResult is a simulated run's outcome.
	SimResult = simrun.Result
	// SimCompletion is one terminal task record.
	SimCompletion = simrun.Completion
	// FileMeta names and sizes one input file.
	FileMeta = catalog.FileMeta
)

// SimConfig describes a virtual-time experiment.
type SimConfig struct {
	// Strategy is the data-management strategy under test.
	Strategy Strategy
	// Workers is the compute-VM count (default 4, the paper's slice).
	Workers int
	// Instance is the VM flavour (default cloud.C1XLarge: 4 cores, 4 GB,
	// 100 Mbps).
	Instance cloud.InstanceType
	// Seed drives boot latency and failure draws.
	Seed int64
	// FailureMTBFSec > 0 injects exponential VM failures.
	FailureMTBFSec float64
	// Recover requeues failed work (paper future work); off = isolation
	// only (published behaviour).
	Recover bool
	// MaxRetries bounds per-task retries under Recover.
	MaxRetries int
	// DisableDiskModel skips local-disk read/write charging.
	DisableDiskModel bool
	// FailAtSec schedules scripted failures: worker index -> virtual time.
	FailAtSec map[int]float64
	// AddWorkerAtSec schedules elastic additions at the given virtual
	// times (each adds one VM of the same instance type).
	AddWorkerAtSec []float64
}

// Simulate runs the workload on a simulated cluster and returns the
// result. The data source (and master) occupy a dedicated node whose
// uplink models the paper's provisioned 100 Mbps.
func Simulate(cfg SimConfig, wl SimWorkload) (SimResult, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Workers < 1 {
		return SimResult{}, fmt.Errorf("frieda: %d workers", cfg.Workers)
	}
	if cfg.Instance.Cores == 0 {
		cfg.Instance = cloud.C1XLarge
	}
	eng := sim.NewEngine()
	cluster := cloud.New(eng, cloud.Options{
		Seed:           cfg.Seed,
		InstantBoot:    true,
		FailureMTBFSec: cfg.FailureMTBFSec,
	})
	extra := len(cfg.AddWorkerAtSec)
	vms, err := cluster.Provision(cfg.Workers+1+extra, cfg.Instance)
	if err != nil {
		return SimResult{}, err
	}
	eng.RunUntil(eng.Now())

	runner, err := simrun.NewRunner(cluster, vms[0], simrun.Config{
		Strategy:    cfg.Strategy,
		Recover:     cfg.Recover,
		MaxRetries:  cfg.MaxRetries,
		ModelDiskIO: !cfg.DisableDiskModel,
	}, wl)
	if err != nil {
		return SimResult{}, err
	}
	for _, vm := range vms[1 : 1+cfg.Workers] {
		runner.AddWorker(vm)
	}
	for wi, at := range cfg.FailAtSec {
		if wi < 0 || wi >= cfg.Workers {
			return SimResult{}, fmt.Errorf("frieda: FailAtSec index %d out of range", wi)
		}
		vm := vms[1+wi]
		eng.At(sim.Time(at), func() { cluster.Fail(vm) })
	}
	for i, at := range cfg.AddWorkerAtSec {
		vm := vms[1+cfg.Workers+i]
		eng.At(sim.Time(at), func() { runner.AddWorker(vm) })
	}
	return runner.Run()
}

// GroupedSimWorkload builds tasks by running the named partition grouping
// ("single", "one-to-all", "pairwise-adjacent", "all-to-all",
// "sliding-window") over a synthetic file list — the same generator the
// real master uses, so simulated runs mirror real ones group for group.
func GroupedSimWorkload(name, grouping string, files int, fileBytes int64, computeSec float64) (SimWorkload, error) {
	gen, err := partition.ByName(grouping)
	if err != nil {
		return SimWorkload{}, err
	}
	cat := catalog.New()
	for i := 0; i < files; i++ {
		cat.MustAdd(catalog.FileMeta{Name: fmt.Sprintf("%s-%05d", name, i), Size: fileBytes})
	}
	groups, err := gen.Generate(cat)
	if err != nil {
		return SimWorkload{}, err
	}
	tasks := make([]SimTask, len(groups))
	for i, g := range groups {
		tasks[i] = SimTask{Index: g.Index, Files: g.Files, ComputeSec: computeSec}
	}
	return SimWorkload{Name: name, Tasks: tasks}, nil
}

// UniformSimWorkload builds n tasks of identical compute cost, each with
// one input file of the given size — a convenient synthetic workload for
// strategy exploration.
func UniformSimWorkload(name string, n int, computeSec float64, fileBytes int64) SimWorkload {
	tasks := make([]SimTask, n)
	for i := range tasks {
		tasks[i] = SimTask{
			Index:      i,
			Files:      []FileMeta{{Name: fmt.Sprintf("%s-%05d", name, i), Size: fileBytes}},
			ComputeSec: computeSec,
		}
	}
	return SimWorkload{Name: name, Tasks: tasks}
}
