package frieda

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

func countingProgram() Program {
	return FuncProgram(func(ctx context.Context, task Task) (string, error) {
		total := 0
		for _, name := range task.Inputs {
			rc, err := task.Store.Open(name)
			if err != nil {
				return "", err
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				return "", err
			}
			total += len(data)
		}
		return fmt.Sprintf("%d", total), nil
	})
}

func memFiles(n, size int) map[string][]byte {
	files := map[string][]byte{}
	for i := 0; i < n; i++ {
		files[fmt.Sprintf("f%03d.dat", i)] = []byte(strings.Repeat("z", size))
	}
	return files
}

func TestRunRealTime(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	report, err := Run(ctx, RunConfig{
		Strategy: RealTimeRemote,
		Dataset:  MemDataset(memFiles(12, 64)),
		Program:  countingProgram(),
		Workers:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Succeeded != 12 || report.Failed != 0 {
		t.Fatalf("report = %+v", report)
	}
	for _, res := range report.Results {
		if res.Output != "64" {
			t.Fatalf("task output = %q", res.Output)
		}
	}
}

func TestRunPrePartitionWithGrouping(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	strat := PrePartitionedRemote
	strat.Grouping = "pairwise-adjacent"
	report, err := Run(ctx, RunConfig{
		Strategy: strat,
		Dataset:  MemDataset(memFiles(10, 32)),
		Program:  countingProgram(),
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Groups != 5 || report.Succeeded != 5 {
		t.Fatalf("report = %+v", report)
	}
	for _, res := range report.Results {
		if res.Output != "64" { // two 32-byte files per group
			t.Fatalf("pair output = %q", res.Output)
		}
	}
}

func TestRunExternalTemplate(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	report, err := Run(ctx, RunConfig{
		Strategy: RealTimeRemote,
		Dataset:  MemDataset(map[string][]byte{"a.txt": []byte("alpha"), "b.txt": []byte("beta")}),
		Template: []string{"cat", "$inp1"},
		Workers:  2,
		WorkDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Succeeded != 2 {
		t.Fatalf("report = %+v (%v)", report, report.WorkerErrors)
	}
	got := map[string]bool{}
	for _, res := range report.Results {
		got[res.Output] = true
	}
	if !got["alpha"] || !got["beta"] {
		t.Fatalf("outputs = %v", got)
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, RunConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	ds := MemDataset(memFiles(1, 1))
	if _, err := Run(ctx, RunConfig{Dataset: ds, Workers: 1}); err == nil {
		t.Fatal("missing program accepted")
	}
	if _, err := Run(ctx, RunConfig{Dataset: ds, Workers: 1, Program: countingProgram(), Template: []string{"cat"}}); err == nil {
		t.Fatal("both program and template accepted")
	}
	if _, err := Run(ctx, RunConfig{Dataset: ds, Workers: 0, Program: countingProgram()}); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestSimulateUniform(t *testing.T) {
	res, err := Simulate(SimConfig{Strategy: RealTimeRemote},
		UniformSimWorkload("u", 32, 1.0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != 32 {
		t.Fatalf("result = %+v", res)
	}
	// 32 tasks / 16 slots ≈ 2 s + small I/O.
	if res.MakespanSec < 2 || res.MakespanSec > 3 {
		t.Fatalf("makespan = %.3f", res.MakespanSec)
	}
}

func TestSimulateScriptedFailure(t *testing.T) {
	res, err := Simulate(SimConfig{
		Strategy:  RealTimeRemote,
		FailAtSec: map[int]float64{0: 1.5},
	}, UniformSimWorkload("f", 64, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned == 0 {
		t.Fatal("scripted failure lost no work")
	}
	if res.Succeeded+res.Abandoned != 64 {
		t.Fatalf("accounting: %+v", res)
	}
	// With recovery everything completes.
	res2, err := Simulate(SimConfig{
		Strategy:  RealTimeRemote,
		FailAtSec: map[int]float64{0: 1.5},
		Recover:   true, MaxRetries: 3,
	}, UniformSimWorkload("f", 64, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Succeeded != 64 {
		t.Fatalf("recovery incomplete: %+v", res2)
	}
}

func TestSimulateElasticAdd(t *testing.T) {
	base, err := Simulate(SimConfig{Strategy: RealTimeRemote, Workers: 1},
		UniformSimWorkload("e", 40, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	grown, err := Simulate(SimConfig{
		Strategy: RealTimeRemote, Workers: 1,
		AddWorkerAtSec: []float64{2.0},
	}, UniformSimWorkload("e", 40, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if grown.MakespanSec >= base.MakespanSec {
		t.Fatalf("elastic add did not help: %.2f vs %.2f", grown.MakespanSec, base.MakespanSec)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{Workers: -1}, UniformSimWorkload("x", 4, 1, 0)); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := Simulate(SimConfig{FailAtSec: map[int]float64{99: 1}}, UniformSimWorkload("x", 4, 1, 0)); err == nil {
		t.Fatal("out-of-range failure index accepted")
	}
}

func TestAdvise(t *testing.T) {
	// ALS-like: transfer-bound -> real-time.
	name, reason, cfg := Advise(8.75e9, 1250, 0.006, false, 4, 4, 100e6)
	if cfg.Kind != RealTime {
		t.Fatalf("ALS advice = %s (%s)", name, reason)
	}
	// Resident data -> compute-to-data.
	_, _, cfg = Advise(8.75e9, 1250, 0, true, 4, 4, 100e6)
	if cfg.Locality != Local {
		t.Fatalf("resident advice = %+v", cfg)
	}
}

func TestRunCollectsOutputs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sink := NewMemStore()
	prog := FuncProgram(func(ctx context.Context, task Task) (string, error) {
		rc, err := task.Store.Open(task.Inputs[0])
		if err != nil {
			return "", err
		}
		data, _ := io.ReadAll(rc)
		rc.Close()
		// Register a derived result file for return to the master.
		result := strings.ToUpper(string(data))
		if err := task.AddOutput(task.Inputs[0]+".result", strings.NewReader(result)); err != nil {
			return "", err
		}
		return "ok", nil
	})
	files := map[string][]byte{}
	for i := 0; i < 6; i++ {
		files[fmt.Sprintf("in%02d.txt", i)] = []byte(fmt.Sprintf("payload-%d", i))
	}
	report, err := Run(ctx, RunConfig{
		Strategy:   RealTimeRemote,
		Dataset:    MemDataset(files),
		Program:    prog,
		Workers:    2,
		OutputSink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Succeeded != 6 {
		t.Fatalf("report = %+v", report)
	}
	if report.OutputBytes == 0 {
		t.Fatal("no output bytes recorded")
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("in%02d.txt.result", i)
		data, ok := sink.Bytes(name)
		if !ok {
			t.Fatalf("output %s missing from sink", name)
		}
		if string(data) != fmt.Sprintf("PAYLOAD-%d", i) {
			t.Fatalf("output %s = %q", name, data)
		}
	}
}

func TestRunWithoutSinkLeavesOutputsLocal(t *testing.T) {
	// Without a sink (the paper's evaluated configuration), AddOutput keeps
	// the file on the worker and nothing extra crosses the wire.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	prog := FuncProgram(func(ctx context.Context, task Task) (string, error) {
		if err := task.AddOutput("result.bin", strings.NewReader(strings.Repeat("r", 1000))); err != nil {
			return "", err
		}
		if !task.Store.Has("result.bin") {
			return "", fmt.Errorf("output not stored locally")
		}
		return "ok", nil
	})
	report, err := Run(ctx, RunConfig{
		Strategy: RealTimeRemote,
		Dataset:  MemDataset(map[string][]byte{"a": []byte("xy")}),
		Program:  prog,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Succeeded != 1 {
		t.Fatalf("report = %+v", report)
	}
	if report.OutputBytes != 0 {
		t.Fatalf("outputs crossed the wire without a sink: %d bytes", report.OutputBytes)
	}
	// Only the 2-byte input moved.
	if report.BytesMoved != 2 {
		t.Fatalf("BytesMoved = %d", report.BytesMoved)
	}
}
