// Command frieda-minblast is the repository's BLASTP-like aligner as a
// standalone binary — the compute-heavy application of the paper's
// bioinformatics use case. It searches each query in a FASTA file against a
// FASTA database and prints the top hits (optionally with residue-level
// alignments). FRIEDA farms it unmodified, staging the database to every
// node as a common file:
//
//	frieda -input /data/queries -workers 4 \
//	    -common nr.fasta \
//	    -template 'frieda-minblast -db ${nr.fasta} -query $inp1'
//
// ${nr.fasta} binds to the staged common file's path inside each worker's
// store; $inp1 binds to the task's query file.
package main

import (
	"flag"
	"fmt"
	"os"

	"frieda/internal/workload/blast"
)

func main() {
	fs := flag.NewFlagSet("frieda-minblast", flag.ExitOnError)
	dbPath := fs.String("db", "", "database FASTA (required)")
	queryPath := fs.String("query", "", "query FASTA (required)")
	topN := fs.Int("top", 5, "hits to report per query")
	wordSize := fs.Int("word", blast.DefaultK, "seed word size")
	minScore := fs.Int("min-score", 30, "minimum reported raw score")
	showAlign := fs.Bool("align", false, "print residue-level alignments")
	fs.Parse(os.Args[1:])
	if *dbPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "usage: frieda-minblast -db nr.fasta -query q.fasta [-top N] [-align]")
		os.Exit(1)
	}

	db, err := loadDB(*dbPath, *wordSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frieda-minblast: %v\n", err)
		os.Exit(1)
	}
	qf, err := os.Open(*queryPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frieda-minblast: %v\n", err)
		os.Exit(1)
	}
	queries, err := blast.ParseFASTA(qf)
	qf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "frieda-minblast: %v\n", err)
		os.Exit(1)
	}

	params := blast.DefaultParams()
	params.K = *wordSize
	params.MinReportScore = *minScore
	params.MaxHits = *topN
	for _, q := range queries {
		hits, err := blast.Search(db, q, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "frieda-minblast: query %s: %v\n", q.ID, err)
			os.Exit(1)
		}
		if len(hits) == 0 {
			fmt.Printf("%s\t(no hits above score %d)\n", q.ID, *minScore)
			continue
		}
		for _, h := range hits {
			fmt.Printf("%s\t%s\tscore=%d\tbits=%.1f\tE=%.2g\n",
				q.ID, h.SubjectID, h.Score, h.BitScore, h.EValue)
			if *showAlign {
				aln, err := blast.Align(q.Residues, db.Sequence(h.SubjectIndex).Residues, 0, 0)
				if err == nil {
					fmt.Println(aln)
				}
			}
		}
	}
}

// loadDB parses and indexes the database FASTA.
func loadDB(path string, k int) (*blast.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return blast.LoadDB(f, k)
}
