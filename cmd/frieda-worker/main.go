// Command frieda-worker runs one FRIEDA execution-plane worker: it
// registers with the master, receives input files into a local work
// directory, executes the program template the controller installed (once
// per core under multicore), and reports task status.
//
//	frieda-worker -master datahost:7001 -name w0 -cores 4 -workdir /scratch/frieda
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"frieda/internal/core"
	"frieda/internal/transport"
)

func main() {
	fs := flag.NewFlagSet("frieda-worker", flag.ExitOnError)
	master := fs.String("master", "127.0.0.1:7001", "master address")
	name := fs.String("name", "", "worker name (default: hostname)")
	cores := fs.Int("cores", 4, "core count announced to the master")
	workdir := fs.String("workdir", "", "directory for received input files (default: temp dir)")
	fs.Parse(os.Args[1:])

	workerName := *name
	if workerName == "" {
		h, err := os.Hostname()
		if err != nil {
			log.Fatalf("frieda-worker: -name not set and hostname unavailable: %v", err)
		}
		workerName = h
	}
	dir := *workdir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "frieda-worker-")
		if err != nil {
			log.Fatalf("frieda-worker: %v", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := core.NewDirStore(dir)
	if err != nil {
		log.Fatalf("frieda-worker: %v", err)
	}

	w, err := core.NewWorker(core.WorkerConfig{
		Name:       workerName,
		Cores:      *cores,
		Store:      store,
		Transport:  transport.NewTCP(),
		MasterAddr: *master,
		DialRetry:  30 * time.Second,
	})
	if err != nil {
		log.Fatalf("frieda-worker: %v", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	log.Printf("frieda-worker: %s (%d cores) joining %s, store %s", workerName, *cores, *master, dir)
	if err := w.Run(ctx); err != nil {
		log.Fatalf("frieda-worker: %v", err)
	}
	log.Printf("frieda-worker: %s done after %d task(s)", workerName, w.Executed())
}
