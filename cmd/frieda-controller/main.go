// Command frieda-controller is FRIEDA's control plane as a CLI: it
// connects to a running frieda-master, installs the data-management
// strategy and program template (START_MASTER), announces the expected
// worker count (FORK_REMOTE_WORKERS), then waits for completion while
// collecting worker errors.
//
//	frieda-controller -master datahost:7001 -workers 4 \
//	    -mode real-time -grouping pairwise-adjacent \
//	    -template 'compare "$inp1" "$inp2"'
//
// Elasticity: -remove drains a worker from a running deployment instead of
// starting a run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"frieda/internal/cli"
	"frieda/internal/core"
	"frieda/internal/transport"
)

func main() {
	fs := flag.NewFlagSet("frieda-controller", flag.ExitOnError)
	master := fs.String("master", "127.0.0.1:7001", "master address")
	workers := fs.Int("workers", 1, "worker count to wait for before execution starts")
	template := fs.String("template", "", "program execution syntax, e.g. 'app arg1 $inp1' (required unless -remove)")
	remove := fs.String("remove", "", "drain and release the named worker, then exit")
	strategyOf := cli.StrategyFlags(fs)
	fs.Parse(os.Args[1:])

	strat, err := strategyOf()
	if err != nil {
		log.Fatalf("frieda-controller: %v", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var argv []string
	if *remove == "" {
		if *template == "" {
			fmt.Fprintln(os.Stderr, "frieda-controller: -template is required")
			fs.Usage()
			os.Exit(2)
		}
		argv, err = cli.SplitTemplate(*template)
		if err != nil {
			log.Fatalf("frieda-controller: %v", err)
		}
	}

	ctl, err := core.NewController(core.ControllerConfig{
		Strategy:   strat,
		Template:   argv,
		Transport:  transport.NewTCP(),
		MasterAddr: *master,
		Workers:    *workers,
	})
	if err != nil {
		log.Fatalf("frieda-controller: %v", err)
	}
	if err := ctl.Start(ctx); err != nil {
		log.Fatalf("frieda-controller: %v", err)
	}

	if *remove != "" {
		if err := ctl.RemoveWorker(*remove); err != nil {
			log.Fatalf("frieda-controller: remove %s: %v", *remove, err)
		}
		log.Printf("frieda-controller: worker %s draining", *remove)
		return
	}

	log.Printf("frieda-controller: strategy %s installed on %s; waiting for %d worker(s)",
		strat, *master, *workers)
	report, err := ctl.Wait(ctx)
	if err != nil {
		log.Fatalf("frieda-controller: %v", err)
	}
	cli.PrintReport(os.Stdout, report)
	if err := ctl.Shutdown(); err != nil {
		log.Printf("frieda-controller: shutdown: %v", err)
	}
	if report.Failed > 0 {
		os.Exit(1)
	}
}
