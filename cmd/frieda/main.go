// Command frieda is the all-in-one launcher: controller, master and N
// workers in a single process on the local machine — the quickest way to
// run a data-parallel program under a FRIEDA strategy.
//
//	frieda -input /data/images -workers 4 -cores 4 \
//	    -mode real-time -grouping pairwise-adjacent \
//	    -template 'compare "$inp1" "$inp2"'
//
// The optional -throttle flag rate-limits the in-process links through one
// shared token bucket, emulating the paper's 100 Mbps provisioned uplink at
// laptop scale (use -throttle 12500000 for 100 Mbps).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"frieda/internal/catalog"
	"frieda/internal/cli"
	"frieda/internal/config"
	"frieda/internal/core"
	"frieda/internal/history"
	"frieda/internal/strategy"
	"frieda/internal/transport"
)

func main() {
	fs := flag.NewFlagSet("frieda", flag.ExitOnError)
	input := fs.String("input", "", "input data directory (required unless -config)")
	template := fs.String("template", "", "program execution syntax, e.g. 'app arg1 $inp1' (required unless -config)")
	workers := fs.Int("workers", 2, "worker count")
	cores := fs.Int("cores", 4, "cores per worker")
	workdir := fs.String("workdir", "", "worker store root (default: temp dir)")
	throttle := fs.Float64("throttle", 0, "emulated link bandwidth in bytes/second (0 = unthrottled)")
	recover := fs.Bool("recover", false, "requeue work lost to failures")
	verbose := fs.Bool("v", false, "verbose master logging")
	configPath := fs.String("config", "", "JSON job specification (overrides the flags above)")
	configExample := fs.Bool("config-example", false, "print a template job specification and exit")
	historyPath := fs.String("history", "", "JSON execution-history file: runs are appended; -advise reads it")
	advise := fs.Bool("advise", false, "print the best recorded strategy for this input (needs -history) and exit")
	jobName := fs.String("name", "", "job name for history records (default: input directory base name)")
	strategyOf := cli.StrategyFlags(fs)
	fs.Parse(os.Args[1:])

	if *configExample {
		if err := config.Example().Write(os.Stdout); err != nil {
			log.Fatalf("frieda: %v", err)
		}
		return
	}

	var strat strategy.Config
	var argv []string
	var err error
	maxRetries := 0
	if *configPath != "" {
		job, err := config.Load(*configPath)
		if err != nil {
			log.Fatalf("frieda: %v", err)
		}
		strat, err = job.Strategy.Resolve()
		if err != nil {
			log.Fatalf("frieda: %v", err)
		}
		*input = job.Input
		argv = job.Template
		*workers = job.Workers
		*cores = job.CoresPerWorker
		*workdir = job.WorkDir
		*throttle = job.ThrottleBytesPerSec
		*recover = job.Recover
		maxRetries = job.MaxRetries
	} else {
		if *input == "" || *template == "" {
			fmt.Fprintln(os.Stderr, "frieda: -input and -template are required (or use -config)")
			fs.Usage()
			os.Exit(2)
		}
		strat, err = strategyOf()
		if err != nil {
			log.Fatalf("frieda: %v", err)
		}
		argv, err = cli.SplitTemplate(*template)
		if err != nil {
			log.Fatalf("frieda: %v", err)
		}
	}
	app := *jobName
	if app == "" {
		app = filepath.Base(*input)
	}
	if *advise {
		if *historyPath == "" {
			log.Fatal("frieda: -advise needs -history")
		}
		store, err := loadHistory(*historyPath)
		if err != nil {
			log.Fatalf("frieda: %v", err)
		}
		rec, err := store.Empirical(app, 1)
		if err != nil {
			log.Fatalf("frieda: %v", err)
		}
		fmt.Printf("best recorded strategy for %q: %s\n  %s (expected %.1fs)\n",
			app, rec.Strategy, rec.Reason, rec.ExpectedMakespanSec)
		return
	}
	root := *workdir
	if root == "" {
		tmp, err := os.MkdirTemp("", "frieda-")
		if err != nil {
			log.Fatalf("frieda: %v", err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	var limiter *transport.Limiter
	if *throttle > 0 {
		limiter = transport.NewLimiter(*throttle, *throttle/4)
	}
	tr := transport.NewMem(limiter)

	masterCfg := core.MasterConfig{
		Source:     catalog.NewDirSource(*input),
		Recover:    *recover,
		MaxRetries: maxRetries,
	}
	if *verbose {
		masterCfg.Logf = log.Printf
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	ctl, err := core.NewController(core.ControllerConfig{
		Strategy:        strat,
		Template:        argv,
		Transport:       tr,
		MasterAddr:      "frieda-master",
		InProcessMaster: true,
		Master:          masterCfg,
		Workers:         *workers,
	})
	if err != nil {
		log.Fatalf("frieda: %v", err)
	}
	if err := ctl.Start(ctx); err != nil {
		log.Fatalf("frieda: %v", err)
	}
	for i := 0; i < *workers; i++ {
		name := fmt.Sprintf("w%d", i)
		store, err := core.NewDirStore(filepath.Join(root, name))
		if err != nil {
			log.Fatalf("frieda: %v", err)
		}
		if _, err := ctl.SpawnWorker(ctx, core.WorkerConfig{
			Name:  name,
			Cores: *cores,
			Store: store,
		}); err != nil {
			log.Fatalf("frieda: %v", err)
		}
	}
	report, err := ctl.Wait(ctx)
	if err != nil {
		log.Fatalf("frieda: %v", err)
	}
	cli.PrintReport(os.Stdout, report)
	if err := ctl.Shutdown(); err != nil {
		log.Printf("frieda: shutdown: %v", err)
	}
	if *historyPath != "" {
		if err := appendHistory(*historyPath, app, *workers, *cores, report); err != nil {
			log.Printf("frieda: recording history: %v", err)
		}
	}
	if report.Failed > 0 {
		os.Exit(1)
	}
}

// loadHistory reads the history file, tolerating a missing one.
func loadHistory(path string) (*history.Store, error) {
	store := history.NewStore()
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return store, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := store.Load(f); err != nil {
		return nil, err
	}
	return store, nil
}

// appendHistory records a completed run for future strategy advice.
func appendHistory(path, app string, workers, cores int, report core.Report) error {
	store, err := loadHistory(path)
	if err != nil {
		return err
	}
	if err := store.Add(history.Record{
		App:         app,
		Strategy:    report.Strategy,
		Workers:     workers,
		Slots:       workers * cores,
		MakespanSec: report.MakespanSec,
		BytesMoved:  float64(report.BytesMoved),
		Succeeded:   report.Succeeded,
		Failed:      report.Failed,
		When:        time.Now(),
	}); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := store.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
