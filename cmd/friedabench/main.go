// Command friedabench regenerates every table and figure of the FRIEDA
// paper's evaluation (Section IV) on the simulated testbed, plus the
// ablations this repository adds. Output is text tables with the published
// numbers alongside the measured ones.
//
//	friedabench -exp all            # Table I, Fig 6a/6b, Fig 7a/7b
//	friedabench -exp table1
//	friedabench -exp fig6a -gantt   # plus a worker timeline
//	friedabench -exp ablations      # prefetch / bandwidth / variance /
//	                                # failures / elasticity / netfail sweeps
//	friedabench -exp netfail        # link faults: isolate vs retry vs resume
//	friedabench -exp scale          # BLAST at 256/1024/4096 workers
//
// -scale shrinks the workloads for quick runs (1.0 = paper size; the full
// sweep takes well under a second of real time — virtual time does the
// waiting).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"frieda/internal/experiments"
	"frieda/internal/simrun"
	"frieda/internal/strategy"
	"frieda/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("friedabench", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment: table1 | fig6a | fig6b | fig7a | fig7b | ablations | scale | all")
	scale := fs.Float64("scale", 1.0, "workload scale (1.0 = paper size)")
	gantt := fs.Bool("gantt", false, "print a worker timeline for figure experiments")
	fs.Parse(os.Args[1:])

	run := func(name string) {
		if err := runExperiment(name, *scale, *gantt); err != nil {
			log.Fatalf("friedabench: %s: %v", name, err)
		}
	}
	switch *exp {
	case "all":
		for _, name := range []string{"table1", "fig6a", "fig6b", "fig7a", "fig7b"} {
			run(name)
		}
	case "ablations":
		for _, name := range []string{"ablation-prefetch", "ablation-bandwidth", "ablation-variance",
			"ablation-failures", "ablation-elastic", "ablation-federated", "ablation-stripes",
			"ablation-storage", "ablation-netfail"} {
			run(name)
		}
	default:
		run(*exp)
	}
}

// runExperiment executes and prints one experiment.
func runExperiment(name string, scale float64, gantt bool) error {
	switch name {
	case "table1":
		rows, err := experiments.RunTable1(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		fmt.Println()
	case "fig6a", "fig6b":
		app := "ALS"
		title := "Figure 6a: Effect of Different Partitioning — ALS (paper: local < real-time < pre-remote)"
		if name == "fig6b" {
			app = "BLAST"
			title = "Figure 6b: Effect of Different Partitioning — BLAST (paper: near-parity, real-time best)"
		}
		bars, err := experiments.RunFig6(app, scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderBars(title, bars))
		fmt.Println()
		if gantt {
			return printGantt(app, scale)
		}
	case "fig7a", "fig7b":
		app := "ALS"
		title := "Figure 7a: Effect of Data Movement — ALS (paper: compute-to-data wins decisively)"
		if name == "fig7b" {
			app = "BLAST"
			title = "Figure 7b: Effect of Data Movement — BLAST (paper: placement-insensitive)"
		}
		bars, err := experiments.RunFig7(app, scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderBars(title, bars))
		fmt.Println()
	case "ablation-prefetch":
		rows, err := experiments.AblationPrefetch(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep("Ablation: real-time prefetch window (ALS)", "prefetch", rows))
		fmt.Println()
	case "ablation-bandwidth":
		rows, err := experiments.AblationBandwidth(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep("Ablation: provisioned bandwidth sweep (ALS)", "mbps", rows))
		fmt.Println()
	case "ablation-variance":
		rows, err := experiments.AblationVariance(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep("Ablation: task-cost drift vs pre-partition penalty (BLAST)", "drift", rows))
		fmt.Println()
	case "ablation-failures":
		rows, err := experiments.AblationFailures(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep("Ablation: VM failures — isolation (paper) vs recovery (future work)", "mtbf_sec", rows))
		fmt.Println()
	case "ablation-elastic":
		rows, err := experiments.AblationElastic(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep("Ablation: elastic worker additions mid-run (BLAST)", "added", rows))
		fmt.Println()
	case "ablation-federated":
		rows, err := experiments.AblationFederated(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep("Ablation: federated two-site placement over a 50 Mbps WAN (ALS)", "remote_workers", rows))
		fmt.Println()
	case "ablation-stripes":
		rows, err := experiments.AblationStripes(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep("Ablation: GridFTP-style striping on a contended fabric", "stripes", rows))
		fmt.Println()
	case "ablation-netfail", "netfail":
		for _, app := range []string{"ALS", "BLAST"} {
			rows, err := experiments.AblationNetFail(app, scale)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderSweep(
				fmt.Sprintf("Ablation: link faults — %s (mean outage 25s; isolate=prototype, retry=requeue, resume=+offset+replicas)", app),
				"mtbf_sec", rows))
			fmt.Println()
		}
		rows, err := experiments.AblationPartition(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep(
			"Ablation: partition duration — BLAST (per-worker link MTBF 8000s)", "mttr_sec", rows))
		fmt.Println()
	case "scale":
		rows, err := experiments.ScaleSweep(experiments.DefaultScaleWorkers, scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep(
			"Large-scale sweep: BLAST real-time beyond the paper's 4 VMs (wall_ms = real time to simulate)",
			"workers", rows))
		fmt.Println()
	case "ablation-storage":
		rows, err := experiments.AblationStorage(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep("Ablation: worker storage tier at 1 Gbps (ALS; 0=local 1=block 2=networked)", "tier", rows))
		fmt.Println()
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// printGantt renders a real-time run's worker timeline.
func printGantt(app string, scale float64) error {
	var wl simrun.Workload
	if app == "ALS" {
		wl = experiments.ALSWorkload(scale)
	} else {
		wl = experiments.BLASTWorkload(scale, 1)
	}
	res, err := experiments.RunStrategy(simrun.Config{Strategy: strategy.RealTimeRemote}, wl, 4, 1)
	if err != nil {
		return err
	}
	fmt.Print(trace.Gantt(res, 72))
	fmt.Print(trace.Summary(res))
	fmt.Println()
	return nil
}
