// Command friedabench regenerates every table and figure of the FRIEDA
// paper's evaluation (Section IV) on the simulated testbed, plus the
// ablations this repository adds. Output is text tables with the published
// numbers alongside the measured ones.
//
//	friedabench -exp all            # Table I, Fig 6a/6b, Fig 7a/7b
//	friedabench -exp table1
//	friedabench -exp fig6a -gantt   # plus a worker timeline
//	friedabench -exp ablations      # prefetch / bandwidth / variance /
//	                                # failures / elasticity / netfail sweeps
//	friedabench -exp netfail        # link faults: isolate vs retry vs resume
//	friedabench -exp durability     # chaos: RF sweep under link+disk+worker faults
//	friedabench -exp masterfail     # master crashes: crashfree vs journal vs amnesia
//	friedabench -exp ctrlplane      # execution templates vs per-task decision cost
//	friedabench -exp scale          # BLAST at 256/1024/4096 workers
//	friedabench -exp list           # every experiment with a one-line description
//
// -scale shrinks the workloads for quick runs (1.0 = paper size; the full
// sweep takes well under a second of real time — virtual time does the
// waiting).
//
// Observability: -trace writes a Chrome trace-event JSON covering every run
// of the selected experiments (open in Perfetto or chrome://tracing; one
// process per run, one track per worker core / transfer lane / link), and
// -metrics writes a virtual-time-sampled CSV of queue depth, goodput, slot
// occupancy and friends plus task/transfer histograms. -attrib prints a
// critical-path attribution report per run — a blame table binning every
// second of the makespan into compute / network / queue-wait / detection /
// retry / repair / straggler-inflation / speculation categories, exact
// latency percentiles, and the longest critical-path segments — and, with
// -trace, adds a critical-path highlight lane to the Chrome export;
// -attribdiff 1,2 diffs two runs' blame tables. All are byte-deterministic
// for a fixed seed and change no experiment results.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"frieda/internal/cloud"
	"frieda/internal/experiments"
	"frieda/internal/exprun"
	"frieda/internal/obs"
	"frieda/internal/obs/attrib"
	"frieda/internal/simrun"
	"frieda/internal/strategy"
	"frieda/internal/trace"
)

// collector gathers per-run tracers, metrics and attribution recorders
// installed through the experiments.Instrument hook, for export after all
// experiments finish.
type collector struct {
	traceOut, metricsOut string
	periodSec            float64
	attribOn             bool
	attribDiff           string
	seq                  int
	tracers              []*obs.Tracer
	metrics              []*obs.Metrics
	last                 *obs.Tracer
	lastMetrics          *obs.Metrics
	labels               []string
	recorders            []*attrib.Recorder
}

// maxUtilLinks caps how many per-link utilisation gauges a metered run
// registers, so scale-sweep runs with thousands of VMs keep a sane CSV.
const maxUtilLinks = 16

// install registers the Instrument hook when -trace, -metrics or -attrib
// was given.
func (c *collector) install() {
	if c.traceOut == "" && c.metricsOut == "" && !c.attribOn {
		return
	}
	experiments.Instrument = func(label string, cluster *cloud.Cluster, cfg *simrun.Config) {
		c.seq++
		name := fmt.Sprintf("%03d %s", c.seq, label)
		if c.attribOn {
			rec := attrib.NewRecorder(cluster.Engine())
			cfg.Attrib = rec
			c.labels = append(c.labels, name)
			c.recorders = append(c.recorders, rec)
		}
		if c.traceOut != "" {
			tr := obs.NewTracer(cluster.Engine(), name)
			cfg.Tracer = tr
			cluster.Network().SetTracer(tr)
			c.tracers = append(c.tracers, tr)
			c.last = tr
		}
		if c.metricsOut != "" {
			m := obs.NewMetrics(cluster.Engine(), name, c.periodSec)
			cfg.Metrics = m
			for i, vm := range cluster.VMs() {
				if i >= maxUtilLinks {
					break
				}
				l := vm.Host().Up()
				m.Gauge("util:"+l.Name(), func() float64 {
					if l.Capacity() <= 0 {
						return 0
					}
					return l.UtilisedBps() / l.Capacity()
				})
			}
			c.metrics = append(c.metrics, m)
			c.lastMetrics = m
		}
	}
}

// export prints the attribution reports and writes the collected trace and
// metrics files. Attribution renders before the Chrome export so the
// critical-path highlight lanes land in the trace document.
func (c *collector) export() error {
	if c.attribOn {
		for i, rec := range c.recorders {
			rep := rec.Report()
			fmt.Printf("== %s ==\n", c.labels[i])
			fmt.Print(trace.AttributionReport(rep))
			fmt.Println()
			if c.traceOut != "" && i < len(c.tracers) {
				trace.EmitCriticalPath(c.tracers[i], rep)
			}
		}
		if c.attribDiff != "" {
			if err := c.printDiff(); err != nil {
				return err
			}
		}
	}
	if c.traceOut != "" {
		f, err := os.Create(c.traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, c.tracers...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		total := 0
		for _, tr := range c.tracers {
			total += tr.Len()
		}
		fmt.Printf("wrote %s: %d runs, %d events (open in https://ui.perfetto.dev)\n",
			c.traceOut, len(c.tracers), total)
	}
	if c.metricsOut != "" {
		f, err := os.Create(c.metricsOut)
		if err != nil {
			return err
		}
		if err := obs.WriteMetricsCSV(f, c.metrics...); err != nil {
			f.Close()
			return err
		}
		if _, err := fmt.Fprintln(f, "# histograms"); err != nil {
			f.Close()
			return err
		}
		if err := obs.WriteHistogramsCSV(f, c.metrics...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d runs\n", c.metricsOut, len(c.metrics))
	}
	return nil
}

// printDiff renders the -attribdiff differential between two collected
// runs, addressed by their 1-based sequence numbers as printed in the
// report headers.
func (c *collector) printDiff() error {
	parts := strings.Split(c.attribDiff, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-attribdiff wants two run numbers, e.g. 1,2 (got %q)", c.attribDiff)
	}
	idx := make([]int, 2)
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 || n > len(c.recorders) {
			return fmt.Errorf("-attribdiff: run %q out of range 1..%d", p, len(c.recorders))
		}
		idx[i] = n - 1
	}
	fmt.Print(trace.AttributionDiff(
		c.labels[idx[0]], c.recorders[idx[0]].Report(),
		c.labels[idx[1]], c.recorders[idx[1]].Report()))
	fmt.Println()
	return nil
}

func main() {
	os.Exit(run())
}

// run carries main's body so the profile-writing defers execute before the
// process exits (os.Exit in main would skip them).
func run() int {
	fs := flag.NewFlagSet("friedabench", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment to run (see -exp list)")
	scale := fs.Float64("scale", 1.0, "workload scale (1.0 = paper size)")
	gantt := fs.Bool("gantt", false, "print a worker timeline for figure experiments")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON of every run to this file (Perfetto-loadable)")
	metricsOut := fs.String("metrics", "", "write virtual-time-sampled metrics CSV of every run to this file")
	metricsPeriod := fs.Float64("metrics-period", 10, "metrics sampling period in virtual seconds")
	attribOn := fs.Bool("attrib", false, "print a critical-path attribution report (blame table + top segments) for every run")
	attribDiff := fs.String("attribdiff", "", "with -attrib: diff two runs' blame tables by sequence number, e.g. 1,2")
	parallel := fs.Int("parallel", runtime.NumCPU(), "sweep cells run on this many goroutines (1 = sequential; output is byte-identical at any width)")
	workers := fs.String("workers", "", "override the -exp scale worker counts (comma-separated, e.g. 4096,16384,65536)")
	benchOut := fs.String("bench-out", "", "write the -exp scale/ctrlplane rows as a benchmark JSON record to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(os.Args[1:])

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("friedabench: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("friedabench: -cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("friedabench: -memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // materialise final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("friedabench: -memprofile: %v", err)
			}
		}()
	}

	scaleWorkers := experiments.DefaultScaleWorkers
	if *workers != "" {
		scaleWorkers = nil
		for _, part := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				log.Fatalf("friedabench: -workers: bad worker count %q", part)
			}
			scaleWorkers = append(scaleWorkers, n)
		}
	}

	if *attribDiff != "" && !*attribOn {
		log.Fatal("friedabench: -attribdiff requires -attrib")
	}
	if (*traceOut != "" || *metricsOut != "" || *attribOn) && *parallel != 1 {
		// The collector numbers runs in Instrument-arrival order, which is
		// only deterministic when cells run one at a time.
		fmt.Fprintln(os.Stderr, "friedabench: -trace/-metrics/-attrib force -parallel 1 (deterministic run numbering)")
		*parallel = 1
	}
	experiments.SetParallelism(*parallel)

	col := &collector{
		traceOut: *traceOut, metricsOut: *metricsOut, periodSec: *metricsPeriod,
		attribOn: *attribOn, attribDiff: *attribDiff,
	}
	col.install()

	failed := false
	run := func(name string) {
		err := runExperiment(name, *scale, *gantt, col, scaleWorkers, *benchOut)
		if err == nil {
			return
		}
		// A sweep with failed cells still rendered its surviving rows;
		// list the failed cells' coordinates and keep going so one bad
		// parameter point doesn't hide the rest of the grid.
		var sweepErr *exprun.SweepError
		if errors.As(err, &sweepErr) {
			failed = true
			fmt.Printf("%s: %d/%d cells failed:\n", name, len(sweepErr.Cells), sweepErr.Total)
			for _, c := range sweepErr.Cells {
				fmt.Printf("  %s: %v\n", c.Label, c.Err)
			}
			fmt.Println()
			return
		}
		log.Fatalf("friedabench: %s: %v", name, err)
	}
	switch *exp {
	case "list":
		fmt.Print(experimentList())
		return 0
	case "all":
		for _, name := range []string{"table1", "fig6a", "fig6b", "fig7a", "fig7b"} {
			run(name)
		}
	case "ablations":
		for _, name := range []string{"ablation-prefetch", "ablation-bandwidth", "ablation-variance",
			"ablation-failures", "ablation-elastic", "ablation-federated", "ablation-stripes",
			"ablation-storage", "ablation-netfail"} {
			run(name)
		}
	default:
		run(*exp)
	}
	if err := col.export(); err != nil {
		log.Fatalf("friedabench: export: %v", err)
	}
	if failed {
		return 1
	}
	return 0
}

// runExperiment executes and prints one experiment.
func runExperiment(name string, scale float64, gantt bool, col *collector, scaleWorkers []int, benchOut string) error {
	switch name {
	case "table1":
		rows, err := experiments.RunTable1(scale)
		fmt.Print(experiments.RenderTable1(rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "fig6a", "fig6b":
		app := "ALS"
		title := "Figure 6a: Effect of Different Partitioning — ALS (paper: local < real-time < pre-remote)"
		if name == "fig6b" {
			app = "BLAST"
			title = "Figure 6b: Effect of Different Partitioning — BLAST (paper: near-parity, real-time best)"
		}
		bars, err := experiments.RunFig6(app, scale)
		fmt.Print(experiments.RenderBars(title, bars))
		fmt.Println()
		if err != nil {
			return err
		}
		if gantt {
			return printGantt(app, scale, col)
		}
	case "fig7a", "fig7b":
		app := "ALS"
		title := "Figure 7a: Effect of Data Movement — ALS (paper: compute-to-data wins decisively)"
		if name == "fig7b" {
			app = "BLAST"
			title = "Figure 7b: Effect of Data Movement — BLAST (paper: placement-insensitive)"
		}
		bars, err := experiments.RunFig7(app, scale)
		fmt.Print(experiments.RenderBars(title, bars))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-prefetch":
		rows, err := experiments.AblationPrefetch(scale)
		fmt.Print(experiments.RenderSweep("Ablation: real-time prefetch window (ALS)", "prefetch", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-bandwidth":
		rows, err := experiments.AblationBandwidth(scale)
		fmt.Print(experiments.RenderSweep("Ablation: provisioned bandwidth sweep (ALS)", "mbps", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-variance":
		rows, err := experiments.AblationVariance(scale)
		fmt.Print(experiments.RenderSweep("Ablation: task-cost drift vs pre-partition penalty (BLAST)", "drift", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-failures":
		rows, err := experiments.AblationFailures(scale)
		fmt.Print(experiments.RenderSweep("Ablation: VM failures — isolation (paper) vs recovery (future work)", "mtbf_sec", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-elastic":
		rows, err := experiments.AblationElastic(scale)
		fmt.Print(experiments.RenderSweep("Ablation: elastic worker additions mid-run (BLAST)", "added", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-federated":
		rows, err := experiments.AblationFederated(scale)
		fmt.Print(experiments.RenderSweep("Ablation: federated two-site placement over a 50 Mbps WAN (ALS)", "remote_workers", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-stripes":
		rows, err := experiments.AblationStripes(scale)
		fmt.Print(experiments.RenderSweep("Ablation: GridFTP-style striping on a contended fabric", "stripes", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-netfail", "netfail":
		for _, app := range []string{"ALS", "BLAST"} {
			rows, err := experiments.AblationNetFail(app, scale)
			fmt.Print(experiments.RenderSweep(
				fmt.Sprintf("Ablation: link faults — %s (mean outage 25s; isolate=prototype, retry=requeue, resume=+offset+replicas)", app),
				"mtbf_sec", rows))
			fmt.Println()
			if err != nil {
				return err
			}
		}
		rows, err := experiments.AblationPartition(scale)
		fmt.Print(experiments.RenderSweep(
			"Ablation: partition duration — BLAST (per-worker link MTBF 8000s)", "mttr_sec", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-stragglers", "stragglers":
		for _, app := range []string{"ALS", "BLAST"} {
			rows, err := experiments.AblationStragglers(app, scale)
			fmt.Print(experiments.RenderSweep(
				fmt.Sprintf("Ablation: gray failures — %s (slow workers/disks/links; none=invisible, detect=+pause, spec=+clone, hedge=+race, both)", app),
				"mtbs_sec", rows))
			fmt.Println()
			if err != nil {
				return err
			}
		}
	case "ablation-masterfail", "masterfail":
		for _, app := range []string{"ALS", "BLAST"} {
			rows, err := experiments.AblationMasterFail(app, scale)
			fmt.Print(experiments.RenderSweep(
				fmt.Sprintf("Ablation: master crashes — %s (mean outage 30s; crashfree=immortal, journal=WAL replay, amnesia=no persistent state)", app),
				"mtbf_sec", rows))
			fmt.Println()
			if err != nil {
				return err
			}
		}
	case "ablation-durability", "durability":
		for _, app := range []string{"ALS", "BLAST"} {
			rows, err := experiments.AblationDurability(app, scale)
			fmt.Print(experiments.RenderSweep(
				fmt.Sprintf("Ablation: durability chaos — %s (RF 1/2/3 under combined link+disk+worker faults, dead VMs replaced)", app),
				"mtbf_sec", rows))
			fmt.Println()
			if err != nil {
				return err
			}
		}
	case "scale":
		rows, err := experiments.ScaleSweep(scaleWorkers, scale)
		fmt.Print(experiments.RenderSweep(
			"Large-scale sweep: BLAST real-time beyond the paper's 4 VMs (wall_ms = real time to simulate)",
			"workers", rows))
		fmt.Println()
		if err != nil {
			return err
		}
		if benchOut != "" {
			if err := writeScaleBench(benchOut, rows); err != nil {
				return err
			}
		}
	case "ablation-storage":
		rows, err := experiments.AblationStorage(scale)
		fmt.Print(experiments.RenderSweep("Ablation: worker storage tier at 1 Gbps (ALS; 0=local 1=block 2=networked)", "tier", rows))
		fmt.Println()
		if err != nil {
			return err
		}
	case "ablation-ctrlplane", "ctrlplane":
		byApp := map[string][]experiments.SweepRow{}
		for _, app := range []string{"ALS", "BLAST"} {
			rows, err := experiments.AblationCtrlPlane(app, scale)
			fmt.Print(experiments.RenderSweep(
				fmt.Sprintf("Ablation: execution-template control plane — %s (chunk = micro-tasks per task; off=priced slow path, on=template replay+check)", app),
				"chunk", rows))
			fmt.Println()
			if err != nil {
				return err
			}
			byApp[app] = rows
		}
		if benchOut != "" {
			if err := writeCtrlPlaneBench(benchOut, byApp); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q\n%s", name, experimentList())
	}
	return nil
}

// experimentList names every experiment with a one-line description, for
// -exp list and the unknown-experiment error.
func experimentList() string {
	entries := []struct{ name, desc string }{
		{"all", "Table I and Figures 6a/6b/7a/7b (the paper's evaluation)"},
		{"table1", "Table I: effect of data parallelization vs the sequential baseline"},
		{"fig6a", "Figure 6a: partitioning strategies on ALS (transfer-bound)"},
		{"fig6b", "Figure 6b: partitioning strategies on BLAST (compute-bound)"},
		{"fig7a", "Figure 7a: data movement / placement on ALS"},
		{"fig7b", "Figure 7b: data movement / placement on BLAST"},
		{"ablations", "every quick ablation sweep below, in sequence"},
		{"ablation-prefetch", "real-time prefetch window depth on ALS"},
		{"ablation-bandwidth", "provisioned link bandwidth sweep on ALS"},
		{"ablation-variance", "task-cost drift vs pre-partition imbalance on BLAST"},
		{"ablation-failures", "VM failures: isolate (paper) vs recover vs replace"},
		{"ablation-elastic", "elastic worker additions mid-run on BLAST"},
		{"ablation-federated", "two-site placement over a 50 Mbps WAN on ALS"},
		{"ablation-stripes", "GridFTP-style transfer striping on a contended fabric"},
		{"ablation-storage", "worker storage tier (local / block / networked) on ALS"},
		{"netfail", "link faults: isolate vs retry vs resume, plus partition duration"},
		{"stragglers", "gray failures: detection, speculation and hedged transfers"},
		{"masterfail", "master crashes: crashfree vs journaled vs amnesiac recovery"},
		{"durability", "RF sweep under combined link+disk+worker chaos"},
		{"ctrlplane", "execution-template control plane: decision cost off/on vs task granularity"},
		{"scale", "BLAST real-time on fat-tree testbeds beyond the paper's 4 VMs"},
		{"list", "print this list"},
	}
	var b strings.Builder
	b.WriteString("experiments:\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "  %-20s %s\n", e.name, e.desc)
	}
	return b.String()
}

// writeCtrlPlaneBench records the ctrlplane sweep as a benchmark JSON file
// (BENCH_ctrlplane.json): one entry per (app, granularity) with the
// control-plane decision throughput of both modes and the template speedup.
func writeCtrlPlaneBench(path string, byApp map[string][]experiments.SweepRow) error {
	type benchRow struct {
		App                string  `json:"app"`
		Chunk              int     `json:"chunk"`
		OffCtrlSec         float64 `json:"off_ctrl_sec"`
		OnCtrlSec          float64 `json:"on_ctrl_sec"`
		OffCtrlTasksPerSec float64 `json:"off_ctrl_tasks_per_sec"`
		OnCtrlTasksPerSec  float64 `json:"on_ctrl_tasks_per_sec"`
		TemplateHits       float64 `json:"template_hits"`
		TemplateMisses     float64 `json:"template_misses"`
		CtrlSpeedup        float64 `json:"ctrl_speedup"`
	}
	out := struct {
		Description string     `json:"description"`
		Go          string     `json:"go"`
		CPU         string     `json:"cpu"`
		Rows        []benchRow `json:"rows"`
	}{
		Description: "execution-template control plane: scheduling decisions per second of control-plane time, slow path vs template replay (Check mode on), on micro-task-chunked ALS/BLAST; ctrl_speedup >= 10 is the acceptance bar",
		Go:          runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPU:         cpuModel(),
	}
	for _, app := range []string{"ALS", "BLAST"} {
		for _, r := range byApp[app] {
			out.Rows = append(out.Rows, benchRow{
				App:                app,
				Chunk:              int(r.Param),
				OffCtrlSec:         r.Series["tmpl_off_ctrl_s"],
				OnCtrlSec:          r.Series["tmpl_on_ctrl_s"],
				OffCtrlTasksPerSec: r.Series["tmpl_off_ctrl_tasks_per_s"],
				OnCtrlTasksPerSec:  r.Series["tmpl_on_ctrl_tasks_per_s"],
				TemplateHits:       r.Series["tmpl_on_hits"],
				TemplateMisses:     r.Series["tmpl_on_misses"],
				CtrlSpeedup:        r.Series["ctrl_speedup"],
			})
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows\n", path, len(out.Rows))
	return nil
}

// writeScaleBench records the scale sweep as a benchmark JSON file
// (BENCH_scale.json): one entry per cluster size with the wall-clock,
// event-count and derived per-event / per-flow cost columns, plus enough
// environment detail to interpret the absolute numbers later.
func writeScaleBench(path string, rows []experiments.SweepRow) error {
	type benchRow struct {
		Workers      int     `json:"workers"`
		MakespanSec  float64 `json:"makespan_sec"`
		BytesMovedGB float64 `json:"bytes_moved_gb"`
		SimEvents    float64 `json:"sim_events"`
		WallMs       float64 `json:"wall_ms"`
		EventsPerSec float64 `json:"events_per_sec"`
		UsPerEvent   float64 `json:"us_per_event"`
		UsPerFlow    float64 `json:"us_per_flow"`
	}
	spec := experiments.DefaultTreeSpec()
	out := struct {
		Description string     `json:"description"`
		Go          string     `json:"go"`
		CPU         string     `json:"cpu"`
		Topology    string     `json:"topology"`
		Rows        []benchRow `json:"rows"`
	}{
		Description: "BLAST real-time sweep on the rack/spine fat-tree testbed with cold-link aggregation and batched scheduling; us_per_event staying flat as workers grow is the scalability claim",
		Go:          runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPU:         cpuModel(),
		Topology: fmt.Sprintf("fat-tree: %d hosts/rack, %d spines, %g:1 oversubscription",
			spec.HostsPerRack, spec.Spines, spec.Oversubscription),
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, benchRow{
			Workers:      int(r.Param),
			MakespanSec:  r.Series["makespan_sec"],
			BytesMovedGB: r.Series["bytes_moved_gb"],
			SimEvents:    r.Series["sim_events"],
			WallMs:       r.Series["wall_ms"],
			EventsPerSec: r.Series["events_per_sec"],
			UsPerEvent:   r.Series["us_per_event"],
			UsPerFlow:    r.Series["us_per_flow"],
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d sizes\n", path, len(out.Rows))
	return nil
}

// cpuModel best-effort reads the processor model for bench records.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

// printGantt renders a real-time run's worker timeline; with -trace active
// it also prints the run's span-level phase breakdown.
func printGantt(app string, scale float64, col *collector) error {
	var wl simrun.Workload
	if app == "ALS" {
		wl = experiments.ALSWorkload(scale)
	} else {
		wl = experiments.BLASTWorkload(scale, 1)
	}
	res, err := experiments.RunStrategy(simrun.Config{Strategy: strategy.RealTimeRemote}, wl, 4, 1)
	if err != nil {
		return err
	}
	fmt.Print(trace.Gantt(res, 72))
	fmt.Print(trace.Summary(res))
	if col.last != nil {
		fmt.Print(trace.SpanSummary(col.last, col.lastMetrics))
	}
	fmt.Println()
	return nil
}
