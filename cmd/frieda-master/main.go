// Command frieda-master runs FRIEDA's execution-plane master as a daemon:
// it serves the input directory over TCP, waits for a controller
// (frieda-controller) to install a strategy and for workers
// (frieda-worker) to register, then coordinates data movement and task
// farming to completion.
//
// The master must run close to the input data (paper, Section II-B): point
// -input at the dataset directory on the data host.
//
//	frieda-master -addr :7001 -input /data/images
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"frieda/internal/catalog"
	"frieda/internal/core"
	"frieda/internal/transport"
)

func main() {
	fs := flag.NewFlagSet("frieda-master", flag.ExitOnError)
	addr := fs.String("addr", ":7001", "listen address")
	input := fs.String("input", "", "input data directory (required)")
	chunk := fs.Int("chunk", core.DefaultChunkSize, "file transfer chunk size in bytes")
	recover := fs.Bool("recover", false, "requeue work lost to failures (future-work extension)")
	retries := fs.Int("retries", 2, "max attempts per group under -recover")
	verbose := fs.Bool("v", false, "verbose logging")
	fs.Parse(os.Args[1:])

	if *input == "" {
		fmt.Fprintln(os.Stderr, "frieda-master: -input is required")
		fs.Usage()
		os.Exit(2)
	}
	if _, err := os.Stat(*input); err != nil {
		log.Fatalf("frieda-master: input directory: %v", err)
	}

	cfg := core.MasterConfig{
		Source:     catalog.NewDirSource(*input),
		Transport:  transport.NewTCP(),
		Addr:       *addr,
		ChunkSize:  *chunk,
		Recover:    *recover,
		MaxRetries: *retries,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	m, err := core.NewMaster(cfg)
	if err != nil {
		log.Fatalf("frieda-master: %v", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	log.Printf("frieda-master: serving %s on %s", *input, *addr)
	if err := m.Serve(ctx); err != nil {
		log.Fatalf("frieda-master: %v", err)
	}
	report := m.Report()
	log.Printf("frieda-master: done — %d/%d groups succeeded, %.3fs makespan",
		report.Succeeded, report.Groups, report.MakespanSec)
}
