// Command frieda-imgcmp is the light-source image-comparison application of
// the paper's ALS use case as a standalone binary: it compares two PGM
// images and prints their similarity measures. FRIEDA farms it unmodified
// with a two-input template:
//
//	frieda -input /data/frames -workers 4 \
//	    -grouping pairwise-adjacent \
//	    -template 'frieda-imgcmp -threshold 0.5 $inp1 $inp2'
//
// Exit status is 0 for similar pairs, 3 for different ones (errors use 1),
// so shell pipelines can branch on the verdict.
package main

import (
	"flag"
	"fmt"
	"os"

	"frieda/internal/workload/imagecmp"
)

func main() {
	fs := flag.NewFlagSet("frieda-imgcmp", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.5, "NCC/SSIM similarity threshold")
	quiet := fs.Bool("q", false, "print only the verdict")
	fs.Parse(os.Args[1:])
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: frieda-imgcmp [-threshold T] a.pgm b.pgm")
		os.Exit(1)
	}
	a, err := loadPGM(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "frieda-imgcmp: %v\n", err)
		os.Exit(1)
	}
	b, err := loadPGM(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "frieda-imgcmp: %v\n", err)
		os.Exit(1)
	}
	r, err := imagecmp.Compare(a, b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frieda-imgcmp: %v\n", err)
		os.Exit(1)
	}
	similar := imagecmp.Similar(r, *threshold)
	verdict := "DIFFERENT"
	if similar {
		verdict = "SIMILAR"
	}
	if *quiet {
		fmt.Println(verdict)
	} else {
		fmt.Printf("%s %s vs %s: %s\n", verdict, fs.Arg(0), fs.Arg(1), r)
	}
	if !similar {
		os.Exit(3)
	}
}

// loadPGM reads one image file.
func loadPGM(path string) (*imagecmp.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return imagecmp.ReadPGM(f)
}
