// Command frieda-datagen synthesises the evaluation datasets on disk: a
// series of beamline-like PGM frames (the ALS image set) or a protein
// query directory plus database FASTA (the BLAST set). Together with
// frieda-imgcmp and frieda-minblast it makes the paper's two pipelines
// runnable end-to-end from a shell:
//
//	frieda-datagen -kind images -out /tmp/frames -n 16 -width 512
//	frieda -input /tmp/frames -workers 4 -grouping pairwise-adjacent \
//	    -template 'frieda-imgcmp $inp1 $inp2'
//
//	frieda-datagen -kind sequences -out /tmp/seqs -n 24 -db-size 60
//	frieda -input /tmp/seqs -workers 4 -common nr.fasta \
//	    -template 'frieda-minblast -db $inp1 -query $inp1'   # see README
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"frieda/internal/workload/blast"
	"frieda/internal/workload/imagecmp"
	"frieda/internal/workload/imggen"
	"frieda/internal/workload/seqgen"
)

func main() {
	fs := flag.NewFlagSet("frieda-datagen", flag.ExitOnError)
	kind := fs.String("kind", "images", "dataset kind: images | sequences")
	out := fs.String("out", "", "output directory (required)")
	n := fs.Int("n", 16, "images or queries to generate")
	seed := fs.Int64("seed", 42, "random seed")
	width := fs.Int("width", 512, "image width/height (images)")
	spots := fs.Int("spots", 24, "diffraction spots per frame (images)")
	dbSize := fs.Int("db-size", 60, "database sequence count (sequences)")
	fs.Parse(os.Args[1:])
	if *out == "" {
		fmt.Fprintln(os.Stderr, "frieda-datagen: -out is required")
		fs.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("frieda-datagen: %v", err)
	}
	switch *kind {
	case "images":
		frames := imggen.Series(imggen.Params{
			Width: *width, Height: *width, Seed: *seed, Spots: *spots,
		}, *n)
		for i, frame := range frames {
			path := filepath.Join(*out, fmt.Sprintf("frame%05d.pgm", i))
			if err := writePGM(path, frame); err != nil {
				log.Fatalf("frieda-datagen: %v", err)
			}
		}
		log.Printf("frieda-datagen: wrote %d %dx%d frames to %s", *n, *width, *width, *out)
	case "sequences":
		wl := seqgen.NewWorkload(seqgen.WorkloadParams{
			Seed: *seed, Queries: *n, DBSequences: *dbSize, HomologFraction: 0.5,
		})
		if err := writeFASTA(filepath.Join(*out, "nr.fasta"), wl.Database); err != nil {
			log.Fatalf("frieda-datagen: %v", err)
		}
		for _, q := range wl.Queries {
			if err := writeFASTA(filepath.Join(*out, q.ID+".fa"), []blast.Sequence{q}); err != nil {
				log.Fatalf("frieda-datagen: %v", err)
			}
		}
		log.Printf("frieda-datagen: wrote %d queries + %d-sequence nr.fasta to %s", *n, *dbSize, *out)
	default:
		log.Fatalf("frieda-datagen: unknown -kind %q", *kind)
	}
}

// writePGM saves one frame.
func writePGM(path string, im *imagecmp.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := imagecmp.WritePGM(f, im); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFASTA saves records to one file.
func writeFASTA(path string, seqs []blast.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := blast.WriteFASTA(f, seqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
