// Benchmark harness regenerating the paper's evaluation (one benchmark per
// table/figure series) plus this repository's ablations. Each iteration
// executes the full experiment on the virtual-time simulator and reports
// the measured virtual makespan as "vsec/run" next to the paper's published
// value ("paper_vsec") where one exists, so `go test -bench=.` prints a
// side-by-side reproduction.
package frieda

import (
	"context"
	"fmt"
	"testing"

	"frieda/internal/experiments"
	"frieda/internal/simrun"
	"frieda/internal/strategy"
)

// benchScale runs the paper-size workloads; virtual time makes this cheap.
const benchScale = 1.0

// reportRun attaches virtual-time metrics to a benchmark.
func reportRun(b *testing.B, res simrun.Result, paperSec float64) {
	b.Helper()
	b.ReportMetric(res.MakespanSec, "vsec/run")
	if paperSec > 0 {
		b.ReportMetric(paperSec, "paper_vsec")
	}
	if res.BytesMoved > 0 {
		b.ReportMetric(res.BytesMoved/1e9, "GB_moved")
	}
}

// runBench executes one strategy/workload pair b.N times.
func runBench(b *testing.B, cfg simrun.Config, wl simrun.Workload, paperSec float64) {
	b.Helper()
	var last simrun.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStrategy(cfg, wl, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportRun(b, last, paperSec)
}

// --- Table I: Effect of Data Parallelization ---

func BenchmarkTable1ALSSequential(b *testing.B) {
	wl := experiments.ALSWorkload(benchScale)
	var last simrun.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sequential(wl)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportRun(b, last, 1258.80)
}

func BenchmarkTable1ALSPrePartition(b *testing.B) {
	cfg := simrun.Config{Strategy: strategy.PrePartitionedRemote}
	runBench(b, cfg, experiments.ALSWorkload(benchScale), 789.39)
}

func BenchmarkTable1ALSRealTime(b *testing.B) {
	cfg := simrun.Config{Strategy: strategy.RealTimeRemote}
	runBench(b, cfg, experiments.ALSWorkload(benchScale), 696.70)
}

func BenchmarkTable1BLASTSequential(b *testing.B) {
	wl := experiments.BLASTWorkload(benchScale, 1)
	var last simrun.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sequential(wl)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportRun(b, last, 61200)
}

func BenchmarkTable1BLASTPrePartition(b *testing.B) {
	strat := strategy.PrePartitionedRemote
	strat.Assigner = experiments.AssignerFor("BLAST")
	runBench(b, simrun.Config{Strategy: strat}, experiments.BLASTWorkload(benchScale, 1), 4131.07)
}

func BenchmarkTable1BLASTRealTime(b *testing.B) {
	cfg := simrun.Config{Strategy: strategy.RealTimeRemote}
	runBench(b, cfg, experiments.BLASTWorkload(benchScale, 1), 3794.90)
}

// --- Figure 6: Effect of Different Partitioning ---

func benchFig6(b *testing.B, app, series string) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		bars, err := experiments.RunFig6(app, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, bar := range bars {
			if bar.Series == series {
				total = bar.TotalSec
			}
		}
	}
	b.ReportMetric(total, "vsec/run")
}

func BenchmarkFig6aALSPreLocal(b *testing.B)   { benchFig6(b, "ALS", "pre-partitioned-local") }
func BenchmarkFig6aALSPreRemote(b *testing.B)  { benchFig6(b, "ALS", "pre-partitioned-remote") }
func BenchmarkFig6aALSRealTime(b *testing.B)   { benchFig6(b, "ALS", "real-time-remote") }
func BenchmarkFig6bBLASTPreLocal(b *testing.B) { benchFig6(b, "BLAST", "pre-partitioned-local") }
func BenchmarkFig6bBLASTPreRemote(b *testing.B) {
	benchFig6(b, "BLAST", "pre-partitioned-remote")
}
func BenchmarkFig6bBLASTRealTime(b *testing.B) { benchFig6(b, "BLAST", "real-time-remote") }

// --- Figure 7: Effect of Data Movement ---

func benchFig7(b *testing.B, app, series string) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		bars, err := experiments.RunFig7(app, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, bar := range bars {
			if bar.Series == series {
				total = bar.TotalSec
			}
		}
	}
	b.ReportMetric(total, "vsec/run")
}

func BenchmarkFig7aALSDataToCompute(b *testing.B)   { benchFig7(b, "ALS", "data-to-computation") }
func BenchmarkFig7aALSComputeToData(b *testing.B)   { benchFig7(b, "ALS", "computation-to-data") }
func BenchmarkFig7bBLASTDataToCompute(b *testing.B) { benchFig7(b, "BLAST", "data-to-computation") }
func BenchmarkFig7bBLASTComputeToData(b *testing.B) { benchFig7(b, "BLAST", "computation-to-data") }

// --- Ablations beyond the paper ---

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPrefetch(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBandwidth(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationVariance(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFailures(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationElastic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationElastic(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Real-runtime benchmark: end-to-end framework overhead ---

func BenchmarkRealRuntimeRealTime(b *testing.B) {
	files := map[string][]byte{}
	for i := 0; i < 32; i++ {
		files[fmt.Sprintf("bench%03d.dat", i)] = make([]byte, 4096)
	}
	prog := FuncProgram(func(ctx context.Context, task Task) (string, error) { return "ok", nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := Run(context.Background(), RunConfig{
			Strategy: RealTimeRemote,
			Dataset:  MemDataset(files),
			Program:  prog,
			Workers:  4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if report.Succeeded != 32 {
			b.Fatalf("report %+v", report)
		}
	}
}

func BenchmarkAblationFederated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFederated(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStripes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStripes(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStorage(0.2); err != nil {
			b.Fatal(err)
		}
	}
}
