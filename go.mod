module frieda

go 1.24
