# FRIEDA build and reproduction targets. Stdlib-only Go; no external deps.

GO ?= go

.PHONY: all build test race bench bench-netsim bench-exprun bench-scale bench-obs bench-masterfail bench-ctrlplane profile-scale vet fmt reproduce ablations examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# One testing.B benchmark per paper table/figure series plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# The allocator perf trajectory: compare against BENCH_netsim.json before
# merging allocator or engine changes, and update the file with the new
# numbers.
bench-netsim:
	$(GO) test -bench='BenchmarkNetsimChurn' -benchmem ./internal/netsim/

# The experiment-orchestrator + event-pool trajectory: engine allocation
# benchmarks plus the parallel ablation sweep. Compare against
# BENCH_exprun.json before merging engine or orchestrator changes, and
# update the file with the new numbers.
bench-exprun:
	$(GO) test -bench='BenchmarkEngineScheduleRun|BenchmarkEngineEventPool' -benchmem -run '^$$' ./internal/sim/
	$(GO) test -bench='BenchmarkExpAblations' -benchmem -run '^$$' ./internal/experiments/

# Regenerate BENCH_scale.json: the datacenter sweep (fat-tree testbed,
# cold-link aggregation, batched scheduling) from 256 to 65,536 workers.
# -parallel 1 keeps the wall-clock columns clean of scheduling noise.
# Compare per-event cost against the committed file before merging netsim,
# simrun or engine changes, and update the file with the new numbers.
bench-scale:
	$(GO) run ./cmd/friedabench -exp scale -parallel 1 -bench-out BENCH_scale.json
	$(GO) test -bench='BenchmarkNetsimTree' -benchmem -benchtime 1x -run '^$$' ./internal/netsim/

# Regenerate BENCH_obs.json: attribution-recorder edge emission (the
# per-completion hot path, budget <=2 allocs/edge) and the critical-path
# solve over a 100k-node chain. Compare against the committed file before
# merging recorder or solver changes, and update it with the new numbers.
bench-obs:
	BENCH_OBS_OUT=$(CURDIR)/BENCH_obs.json $(GO) test -run 'TestWriteBenchObs' -count=1 ./internal/obs/attrib/

# Regenerate BENCH_masterfail.json: catalog journal append (the
# per-mutation hot path on every control-plane state change, budget <=2
# allocs/record) and recovery replay of a 10k-record journal (the restart
# cost the master recovery model prices). Compare against the committed
# file before merging catalog or journal changes, and update it with the
# new numbers.
bench-masterfail:
	BENCH_MASTERFAIL_OUT=$(CURDIR)/BENCH_masterfail.json $(GO) test -run 'TestWriteBenchMasterfail' -count=1 ./internal/catalog/

# Regenerate BENCH_ctrlplane.json: the execution-template control plane
# sweep (templates off/on x task granularity, micro-task-chunked ALS and
# BLAST) plus the decision-path and master-dispatch microbenchmarks. The
# ctrl_speedup column must stay >= 10 at fine granularity. Compare against
# the committed file before merging scheduler or control-plane changes,
# and update it with the new numbers.
bench-ctrlplane:
	$(GO) run ./cmd/friedabench -exp ctrlplane -parallel 1 -bench-out BENCH_ctrlplane.json
	$(GO) test -bench='BenchmarkCtrlPlaneDecide' -benchmem -run '^$$' ./internal/simrun/
	$(GO) test -bench='BenchmarkMasterDispatchBatch' -benchtime 10x -run '^$$' ./internal/core/

# CPU-profile the largest scale cell; inspect with `go tool pprof cpu.prof`.
profile-scale:
	$(GO) run ./cmd/friedabench -exp scale -parallel 1 -workers 65536 -cpuprofile cpu.prof -memprofile mem.prof

# Regenerate the paper's evaluation (Table I, Fig 6a/6b, Fig 7a/7b).
reproduce:
	$(GO) run ./cmd/friedabench -exp all

# The design-choice sweeps beyond the paper.
ablations:
	$(GO) run ./cmd/friedabench -exp ablations

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagepipeline
	$(GO) run ./examples/blastfarm
	$(GO) run ./examples/elastic
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/federated

clean:
	$(GO) clean ./...
